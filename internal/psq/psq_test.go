package psq

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sora/internal/sim"
)

// approxDur asserts |got-want| <= tol.
func approxDur(t *testing.T, name string, got, want, tol time.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Errorf("%s: got %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 2)
	var doneAt sim.Time = -1
	s.Submit(100*time.Millisecond, func() { doneAt = k.Now() })
	k.Run()
	approxDur(t, "completion", doneAt, 100*time.Millisecond, time.Microsecond)
}

func TestTwoJobsShareOneCore(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0))
	var first, second sim.Time = -1, -1
	s.Submit(100*time.Millisecond, func() { first = k.Now() })
	s.Submit(100*time.Millisecond, func() { second = k.Now() })
	k.Run()
	// Both share the core: each takes 200ms.
	approxDur(t, "first", first, 200*time.Millisecond, time.Microsecond)
	approxDur(t, "second", second, 200*time.Millisecond, time.Microsecond)
}

func TestShorterJobFinishesFirst(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0))
	var shortAt, longAt sim.Time = -1, -1
	s.Submit(300*time.Millisecond, func() { longAt = k.Now() })
	s.Submit(100*time.Millisecond, func() { shortAt = k.Now() })
	k.Run()
	// Shared until short job attains 100ms of work (at t=200ms), then the
	// long job runs alone for its remaining 200ms: done at 400ms.
	approxDur(t, "short", shortAt, 200*time.Millisecond, time.Microsecond)
	approxDur(t, "long", longAt, 400*time.Millisecond, time.Microsecond)
}

func TestJobsWithinCoreCountDoNotInterfere(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 4)
	var times []sim.Time
	for i := 0; i < 4; i++ {
		s.Submit(50*time.Millisecond, func() { times = append(times, k.Now()) })
	}
	k.Run()
	if len(times) != 4 {
		t.Fatalf("%d completions, want 4", len(times))
	}
	for _, at := range times {
		approxDur(t, "completion", at, 50*time.Millisecond, time.Microsecond)
	}
}

func TestOverheadSlowsExcessThreads(t *testing.T) {
	// With alpha>0, running 8 jobs on 4 cores must take strictly longer
	// than the overhead-free 2x slowdown.
	run := func(alpha float64) sim.Time {
		k := sim.NewKernel(1)
		s := New(k, 4, WithOverhead(alpha))
		var last sim.Time
		for i := 0; i < 8; i++ {
			s.Submit(100*time.Millisecond, func() { last = k.Now() })
		}
		k.Run()
		return last
	}
	noOverhead := run(0)
	withOverhead := run(0.05)
	approxDur(t, "no overhead", noOverhead, 200*time.Millisecond, time.Microsecond)
	// Efficiency = 1/(1+0.05*4) = 1/1.2 => 240ms.
	approxDur(t, "with overhead", withOverhead, 240*time.Millisecond, time.Microsecond)
}

func TestSuspendResumePreservesProgress(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0))
	var doneAt sim.Time = -1
	j := s.Submit(100*time.Millisecond, func() { doneAt = k.Now() })
	k.Schedule(40*time.Millisecond, func() { s.Suspend(j) })
	k.Schedule(300*time.Millisecond, func() { s.Resume(j) })
	k.Run()
	// 40ms served, suspended 260ms, then 60ms remaining: done at 360ms.
	approxDur(t, "done", doneAt, 360*time.Millisecond, time.Microsecond)
}

func TestSuspendedJobImposesNoOverhead(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0.5))
	var aDone sim.Time = -1
	a := s.Submit(100*time.Millisecond, func() { aDone = k.Now() })
	_ = a
	b := s.Submit(10*time.Hour, nil)
	s.Suspend(b)
	k.Run()
	// b suspended immediately: a runs alone at full efficiency.
	approxDur(t, "a done", aDone, 100*time.Millisecond, time.Microsecond)
}

func TestRemaining(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0))
	j := s.Submit(100*time.Millisecond, nil)
	k.RunUntil(30 * time.Millisecond)
	approxDur(t, "remaining", s.Remaining(j), 70*time.Millisecond, time.Microsecond)
	s.Suspend(j)
	k.RunUntil(500 * time.Millisecond)
	approxDur(t, "remaining suspended", s.Remaining(j), 70*time.Millisecond, time.Microsecond)
	s.Resume(j)
	k.Run()
	if s.Remaining(j) != 0 {
		t.Errorf("remaining after done = %v, want 0", s.Remaining(j))
	}
	if j.State() != StateDone {
		t.Errorf("state = %v, want done", j.State())
	}
}

func TestAbort(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1)
	fired := false
	j := s.Submit(100*time.Millisecond, func() { fired = true })
	k.RunUntil(10 * time.Millisecond)
	s.Abort(j)
	k.Run()
	if fired {
		t.Error("aborted job's onDone fired")
	}
	if j.State() != StateAborted {
		t.Errorf("state = %v, want aborted", j.State())
	}
	s.Abort(j) // idempotent
}

func TestAbortSuspended(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1)
	j := s.Submit(100*time.Millisecond, func() { t.Error("onDone fired") })
	s.Suspend(j)
	s.Abort(j)
	k.Run()
	if j.State() != StateAborted {
		t.Errorf("state = %v, want aborted", j.State())
	}
}

func TestZeroDemandCompletesImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1)
	var doneAt sim.Time = -1
	k.Schedule(time.Second, func() {
		s.Submit(0, func() { doneAt = k.Now() })
	})
	k.Run()
	if doneAt != time.Second {
		t.Errorf("zero-demand job done at %v, want 1s", doneAt)
	}
}

func TestSetCoresMidFlight(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1, WithOverhead(0))
	var doneAt sim.Time = -1
	s.Submit(200*time.Millisecond, func() { doneAt = k.Now() })
	s.Submit(200*time.Millisecond, nil)
	// After 100ms (each job has 50ms attained), scale 1 -> 2 cores.
	k.Schedule(100*time.Millisecond, func() { s.SetCores(2) })
	k.Run()
	// Remaining 150ms each then runs at full speed: done at 250ms.
	approxDur(t, "done", doneAt, 250*time.Millisecond, time.Microsecond)
}

func TestZeroCoresStallsUntilScaledUp(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 0)
	var doneAt sim.Time = -1
	s.Submit(100*time.Millisecond, func() { doneAt = k.Now() })
	k.Schedule(time.Second, func() { s.SetCores(1) })
	k.Run()
	approxDur(t, "done", doneAt, 1100*time.Millisecond, time.Microsecond)
}

func TestUtilizationAccounting(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 2, WithOverhead(0))
	s.Submit(100*time.Millisecond, nil) // one job on 2 cores: 50% util
	k.RunUntil(100 * time.Millisecond)
	work := s.CumulativeWork()
	capacity := s.CumulativeCapacity()
	if math.Abs(work-0.1) > 1e-6 {
		t.Errorf("work = %g core-s, want 0.1", work)
	}
	if math.Abs(capacity-0.2) > 1e-6 {
		t.Errorf("capacity = %g core-s, want 0.2", capacity)
	}
}

func TestEfficiencyReporting(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 2, WithOverhead(0.1))
	if got := s.Efficiency(); got != 1 {
		t.Errorf("idle efficiency = %g, want 1", got)
	}
	for i := 0; i < 4; i++ {
		s.Submit(time.Hour, nil)
	}
	want := 1 / (1 + 0.1*2)
	if got := s.Efficiency(); math.Abs(got-want) > 1e-12 {
		t.Errorf("efficiency = %g, want %g", got, want)
	}
}

func TestSuspendPanicsOnDoneJob(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1)
	j := s.Submit(0, nil)
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic suspending a done job")
		}
	}()
	s.Suspend(j)
}

func TestResumePanicsOnRunnableJob(t *testing.T) {
	k := sim.NewKernel(1)
	s := New(k, 1)
	j := s.Submit(time.Second, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic resuming a runnable job")
		}
	}()
	s.Resume(j)
}

// Property: work is conserved — total completion-weighted demand equals
// cumulative useful work delivered, for arbitrary demands.
func TestQuickWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		k := sim.NewKernel(9)
		s := New(k, 2, WithOverhead(0.02))
		var totalDemand float64
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			totalDemand += d.Seconds()
			s.Submit(d, nil)
		}
		k.Run()
		return math.Abs(s.CumulativeWork()-totalDemand) < 1e-6+1e-9*totalDemand
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: completions occur in nondecreasing order of demand when all
// jobs are submitted at t=0 (PS preserves demand ordering).
func TestQuickPSOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 || len(raw) > 32 {
			return true
		}
		k := sim.NewKernel(13)
		s := New(k, 1)
		type rec struct {
			demand time.Duration
			at     sim.Time
		}
		var recs []rec
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			idx := len(recs)
			recs = append(recs, rec{demand: d})
			s.Submit(d, func() { recs[idx].at = k.Now() })
		}
		k.Run()
		for i := range recs {
			for j := range recs {
				if recs[i].demand < recs[j].demand && recs[i].at > recs[j].at {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with alpha=0 and n <= cores, every job completes after exactly
// its demand.
func TestQuickNoInterferenceUnderCoreCount(t *testing.T) {
	f := func(raw [4]uint16) bool {
		k := sim.NewKernel(21)
		s := New(k, 4, WithOverhead(0))
		ok := true
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			s.Submit(d, func() {
				diff := k.Now() - d
				if diff < 0 {
					diff = -diff
				}
				if diff > time.Microsecond {
					ok = false
				}
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubmitComplete(b *testing.B) {
	k := sim.NewKernel(1)
	s := New(k, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(time.Duration(i%1000+1)*time.Microsecond, nil)
		if s.Runnable() > 256 {
			k.Run()
		}
	}
	k.Run()
}
