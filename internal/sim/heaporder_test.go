package sim_test

import (
	"testing"
	"time"

	"sora/internal/bench"
	"sora/internal/sim"
)

// timerPair is one logical event scheduled on both kernels under test.
type timerPair struct {
	id int
	st *sim.Timer
	rt *bench.RefTimer
}

// TestHeapOrderMatchesContainerHeap drives the live 4-ary kernel and the
// frozen container/heap reference (internal/bench.RefKernel) through an
// identical randomized stream of insert/cancel/reset/step operations and
// requires them to fire events in exactly the same order at exactly the
// same virtual times. Reset has no pre-4-ary equivalent, so its oracle
// is its documented definition: Cancel followed by a fresh Schedule
// (both consume one sequence number, keeping the tie-break streams
// aligned).
//
// Divergence is checked eagerly after every fired event, not just at the
// end: the live kernel recycles fired timer structs, so if the
// implementations ever disagreed about which event fires next, later
// cancels through the bookkeeping here could act on recycled handles and
// corrupt the comparison instead of failing it.
func TestHeapOrderMatchesContainerHeap(t *testing.T) {
	rng := sim.NewKernel(0xbead).Split(0x4a11)
	k := sim.NewKernel(7)
	ref := bench.NewRefKernel()

	var live []timerPair
	nextID := 0
	var simFired, refFired []int

	// schedule adds one logical event to both kernels with the same
	// delay; callbacks record the firing into per-kernel logs.
	schedule := func(d time.Duration) {
		id := nextID
		nextID++
		p := timerPair{
			id: id,
			st: k.Schedule(d, func() { simFired = append(simFired, id) }),
			rt: ref.Schedule(d, func() { refFired = append(refFired, id) }),
		}
		live = append(live, p)
	}

	// forget drops index i from the live set (order is irrelevant).
	forget := func(i int) {
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}

	// stepBoth fires one event on each kernel and verifies they agree on
	// which event that was and when it happened, then retires the pair.
	stepBoth := func() {
		okSim, okRef := k.Step(), ref.Step()
		if okSim != okRef {
			t.Fatalf("step availability diverged: sim=%v ref=%v", okSim, okRef)
		}
		if !okSim {
			return
		}
		if len(simFired) != len(refFired) {
			t.Fatalf("fired counts diverged: sim=%d ref=%d", len(simFired), len(refFired))
		}
		n := len(simFired)
		if simFired[n-1] != refFired[n-1] {
			t.Fatalf("event %d diverged: sim fired id %d, ref fired id %d",
				n, simFired[n-1], refFired[n-1])
		}
		if k.Now() != ref.Now() {
			t.Fatalf("clocks diverged after event %d: sim=%v ref=%v", n, k.Now(), ref.Now())
		}
		id := simFired[n-1]
		for i := range live {
			if live[i].id == id {
				forget(i)
				break
			}
		}
	}

	delay := func() time.Duration {
		// Coarse quantization forces plenty of exact (at, seq) ties, the
		// case the FIFO tie-break exists for.
		return time.Duration(rng.IntN(64)) * 250 * time.Microsecond
	}

	const ops = 20000
	for op := 0; op < ops; op++ {
		switch x := rng.IntN(100); {
		case x < 40 || len(live) == 0:
			schedule(delay())
		case x < 55:
			// Cancel a random live pair on both kernels.
			i := rng.IntN(len(live))
			live[i].st.Cancel()
			live[i].rt.Cancel()
			forget(i)
		case x < 70:
			// Reset on the live kernel; Cancel+Schedule on the reference.
			i := rng.IntN(len(live))
			d := delay()
			p := live[i]
			p.st.Reset(d)
			p.rt.Cancel()
			live[i].rt = ref.Schedule(d, func() { refFired = append(refFired, p.id) })
		default:
			stepBoth()
		}
		if k.Pending() != ref.Pending() {
			t.Fatalf("op %d: pending diverged: sim=%d ref=%d", op, k.Pending(), ref.Pending())
		}
	}
	// Drain both queues completely.
	for k.Pending() > 0 || ref.Pending() > 0 {
		stepBoth()
	}
	if len(simFired) != len(refFired) {
		t.Fatalf("total fired diverged: sim=%d ref=%d", len(simFired), len(refFired))
	}
}
