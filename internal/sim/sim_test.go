package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	k.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if !tm.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Cancelling again must be a no-op.
	tm.Cancel()
}

func TestCancelNilTimer(t *testing.T) {
	var tm *Timer
	tm.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if k.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 {
		t.Errorf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(5 * time.Second)
	if k.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", k.Now())
	}
}

func TestRunFor(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(time.Second)
	k.RunFor(time.Second)
	if k.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", k.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(time.Millisecond, rec)
		}
	}
	k.Schedule(0, rec)
	k.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if k.Now() != 99*time.Millisecond {
		t.Errorf("Now() = %v, want 99ms", k.Now())
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(time.Second, func() {
		tm := k.Schedule(-time.Hour, func() {})
		if tm.When() != time.Second {
			t.Errorf("negative delay scheduled at %v, want now (1s)", tm.When())
		}
	})
	k.Run()
}

func TestAtPastClamped(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(time.Second, func() {
		fired := false
		k.At(0, func() { fired = true })
		// The clamped event must still run, at current time.
		k.Step()
		if !fired {
			t.Error("past-scheduled event did not fire")
		}
		if k.Now() != time.Second {
			t.Errorf("clock moved backwards to %v", k.Now())
		}
	})
	k.Run()
}

func TestStopResume(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 5; i++ {
		k.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("count = %d after Stop, want 2", count)
	}
	k.Resume()
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d after Resume, want 5", count)
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	var at []time.Duration
	tk := k.Every(100*time.Millisecond, func() { at = append(at, k.Now()) })
	k.RunUntil(350 * time.Millisecond)
	tk.Stop()
	k.RunUntil(time.Second)
	if len(at) != 3 {
		t.Fatalf("ticker fired %d times, want 3: %v", len(at), at)
	}
	for i, want := range []time.Duration{100, 200, 300} {
		if at[i] != want*time.Millisecond {
			t.Errorf("tick %d at %v, want %v", i, at[i], want*time.Millisecond)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tk *Ticker
	tk = k.Every(time.Second, func() {
		count++
		tk.Stop()
	})
	k.RunUntil(10 * time.Second)
	if count != 1 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 1", count)
	}
}

func TestEveryPanicsOnBadArgs(t *testing.T) {
	k := NewKernel(1)
	for name, fn := range map[string]func(){
		"zero interval": func() { k.Every(0, func() {}) },
		"nil callback":  func() { k.Every(time.Second, nil) },
		"nil at":        func() { k.At(time.Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(42)
		var out []uint64
		for i := 0; i < 50; i++ {
			d := time.Duration(k.Rand().Int64N(int64(time.Second)))
			k.Schedule(d, func() { out = append(out, k.Rand().Uint64()) })
		}
		k.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	k := NewKernel(1)
	tm := k.Schedule(time.Hour, func() {})
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d before cancel, want 1", k.Pending())
	}
	tm.Cancel()
	if k.Pending() != 0 {
		t.Errorf("Pending() = %d after cancel, want 0", k.Pending())
	}
	// Cancelling again (and cancelling a fired timer) stays a no-op.
	tm.Cancel()
	fired := k.Schedule(0, func() {})
	k.Run()
	fired.Cancel()
	if k.Pending() != 0 {
		t.Errorf("Pending() = %d after post-fire cancel, want 0", k.Pending())
	}
}

// TestCancelChurnBounded is the regression test for the canceled-timer
// leak: repeated schedule/cancel cycles of far-future timers (the timeout
// pattern) must not grow the event queue.
func TestCancelChurnBounded(t *testing.T) {
	k := NewKernel(1)
	// One live heartbeat so the run never goes idle.
	stop := false
	var beat func()
	beat = func() {
		if !stop {
			k.Schedule(time.Millisecond, beat)
		}
	}
	k.Schedule(0, beat)
	for cycle := 0; cycle < 10_000; cycle++ {
		tm := k.Schedule(24*time.Hour, func() { t.Error("cancelled timeout fired") })
		tm.Cancel()
		if p := k.Pending(); p > 2 {
			t.Fatalf("cycle %d: Pending() = %d, cancelled timers are accumulating", cycle, p)
		}
		k.Step()
	}
	stop = true
	k.Run()
}

// TestCancelSurvivesHeapMovement cancels timers after other heap
// operations have shuffled positions, exercising index maintenance.
func TestCancelSurvivesHeapMovement(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	timers := make([]*Timer, 100)
	for i := range timers {
		i := i
		// Descending deadlines so every push sifts to the top.
		timers[i] = k.Schedule(time.Duration(len(timers)-i)*time.Second, func() { fired = append(fired, i) })
	}
	for i := 0; i < len(timers); i += 2 {
		timers[i].Cancel()
	}
	if k.Pending() != 50 {
		t.Fatalf("Pending() = %d after cancelling half, want 50", k.Pending())
	}
	k.Run()
	if len(fired) != 50 {
		t.Fatalf("%d timers fired, want 50", len(fired))
	}
	for _, i := range fired {
		if i%2 == 0 {
			t.Fatalf("cancelled timer %d fired", i)
		}
	}
}

// TestSplitOrderIndependent pins the Split determinism contract: the
// stream for a label depends only on (kernel seed, label), not on how
// many splits happened before or on parent-stream consumption.
func TestSplitOrderIndependent(t *testing.T) {
	draw := func(r *rand.Rand) [4]uint64 {
		var out [4]uint64
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}

	k1 := NewKernel(42)
	a1 := draw(k1.Split(1))
	b1 := draw(k1.Split(2))

	k2 := NewKernel(42)
	k2.Rand().Uint64() // consume parent stream before splitting
	b2 := draw(k2.Split(2))
	k2.Split(99) // extra consumer
	a2 := draw(k2.Split(1))

	if a1 != a2 {
		t.Errorf("split(1) depends on split order/parent draws: %v vs %v", a1, a2)
	}
	if b1 != b2 {
		t.Errorf("split(2) depends on split order/parent draws: %v vs %v", b1, b2)
	}

	// Splitting must not perturb the parent stream either.
	k3, k4 := NewKernel(7), NewKernel(7)
	k4.Split(123)
	for i := 0; i < 10; i++ {
		if g, w := k4.Rand().Uint64(), k3.Rand().Uint64(); g != w {
			t.Fatalf("parent stream perturbed by Split: draw %d = %d, want %d", i, g, w)
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	k := NewKernel(7)
	a := k.Split(1)
	b := k.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams produced %d identical draws out of 100", same)
	}
}

// Property: for any set of delays, events fire in sorted order and the
// final clock equals the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		k := NewKernel(3)
		delays := make([]time.Duration, len(raw))
		for i, r := range raw {
			delays[i] = time.Duration(r % 1_000_000_000)
		}
		var fired []time.Duration
		for _, d := range delays {
			k.Schedule(d, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		maxd := delays[0]
		for _, d := range delays {
			if d > maxd {
				maxd = d
			}
		}
		return k.Now() == maxd && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset prevents exactly that subset
// from firing.
func TestQuickCancelSubset(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		k := NewKernel(5)
		fired := make(map[int]bool)
		timers := make([]*Timer, len(raw))
		for i, r := range raw {
			i := i
			timers[i] = k.Schedule(time.Duration(r)*time.Microsecond, func() { fired[i] = true })
		}
		for i := range timers {
			if i < len(mask) && mask[i] {
				timers[i].Cancel()
			}
		}
		k.Run()
		for i := range timers {
			wantFired := !(i < len(mask) && mask[i])
			if fired[i] != wantFired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 10; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	k.Run()
	if k.Processed() != 10 {
		t.Errorf("Processed() = %d, want 10", k.Processed())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	k := NewKernel(1)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(time.Duration(rng.Int64N(int64(time.Second))), func() {})
		if k.Pending() > 1024 {
			for k.Pending() > 0 {
				k.Step()
			}
		}
	}
}
