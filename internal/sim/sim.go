// Package sim provides the discrete-event simulation kernel that drives the
// entire Sora reproduction: a virtual clock, an event queue with
// deterministic FIFO tie-breaking, cancellable and resettable timers,
// periodic tickers and a seeded random number generator.
//
// All simulated components (cluster instances, workload generators,
// controllers, samplers) schedule callbacks on a single Kernel. Events fire
// in nondecreasing virtual-time order; events scheduled for the same instant
// fire in the order they were scheduled, which makes every run bit-for-bit
// reproducible for a given seed.
//
// The kernel is intentionally single-threaded: determinism matters more
// than parallel speedup for reproducing the paper's figures, and a single
// 12-minute trace-driven experiment completes in a few wall-clock seconds.
// Parallelism lives one layer up: independent simulations (one Kernel per
// goroutine, nothing shared) scale across cores embarrassingly; see the
// experiment package's runner.
//
// # Hot-path design
//
// The event queue is an inlined 4-ary min-heap specialized to *Timer and
// keyed on (at, seq) — no heap.Interface indirection, no interface
// conversions, and half the tree depth of a binary heap, which matters
// because sift costs are dominated by pointer-chasing comparisons. Fired
// and cancelled Timer structs go on a per-kernel free list and are handed
// out again by Schedule/At, so steady-state event churn allocates nothing.
// Timer.Reset re-keys a pending timer in place (one sift, no queue
// round-trip), which is what lets the PS-server model reschedule its
// single completion timer on every state change without allocating.
//
// Timer recycling narrows the Timer handle contract: a handle is live from
// Schedule/At until its callback starts or Cancel returns, and must not be
// used after that — the kernel may already have reissued the struct to an
// unrelated Schedule call. Components that keep a timer field (tickers,
// PS servers, attempt timeouts) therefore nil the field out at the top of
// the callback, before any code that could schedule. Cancel and Reset on
// a handle whose timer already fired or was cancelled are detected (the
// timer is no longer queued) and are a no-op / panic respectively, unless
// the struct has since been reissued — the hazard the ownership rule
// exists to prevent.
//
// History note: Split originally drew its child seed from the parent RNG
// stream, so the *order* of Split calls perturbed both the parent stream
// and every later split. Split streams are now derived purely from the
// kernel seed and the label, so equal (seed, label) always yields the
// same stream regardless of when or in what order splits happen. Runs
// seeded identically before and after this fix produce different (but
// equally valid) sample paths.
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured as the duration elapsed since the
// start of the simulation (t=0). Using time.Duration keeps arithmetic with
// intervals trivial and formatting human-readable.
type Time = time.Duration

// Timer is a handle for a scheduled event. A Timer can be cancelled before
// it fires, or re-armed in place with Reset.
//
// Ownership: the handle is valid from Schedule/At until the callback
// starts executing or Cancel returns. After either, the kernel recycles
// the struct for future Schedule calls; holding and using a stale handle
// can act on an unrelated timer. Code that stores a timer in a field must
// clear the field at the top of the callback (before anything that might
// schedule) and after Cancel.
//
//soravet:pool Timer invalidated-by Cancel,Kernel.releaseTimer handle dead once Cancel returns or the callback starts; the kernel free-lists the struct and a later Schedule may reissue it
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	k        *Kernel
	index    int // position in the heap, -1 once fired/cancelled
	canceled bool
}

// Cancel prevents the timer's callback from running and removes the timer
// from the event queue immediately, so far-future timers that are almost
// always cancelled (timeouts, deadlines) do not accumulate in the heap.
// The struct is recycled; the handle is dead once Cancel returns.
// Cancelling a nil, fired or already-cancelled timer is a no-op (provided
// the struct has not been reissued; see the ownership rule in the type
// comment).
func (t *Timer) Cancel() {
	if t == nil || t.index < 0 {
		return
	}
	t.canceled = true
	t.fn = nil
	k := t.k
	k.heapRemove(t.index)
	k.releaseTimer(t)
}

// Canceled reports whether Cancel removed this timer before it fired.
// Only meaningful while the handle is live or before the struct is
// reissued.
func (t *Timer) Canceled() bool { return t.canceled }

// When returns the virtual time the timer is (or was) scheduled to fire at.
func (t *Timer) When() Time { return t.at }

// Reset re-arms a pending timer to fire delay units of virtual time from
// now, keeping its callback. Ordering is exactly that of Cancel followed
// by Schedule: the timer receives a fresh sequence number, so it fires
// after events already queued for the same instant. Unlike
// Cancel+Schedule it performs a single in-place sift and touches no free
// list. A negative delay is treated as zero.
//
// Reset panics on a fired or cancelled timer: once the callback has run
// or Cancel returned, the kernel may have recycled the struct, and
// re-arming it would hijack an unrelated event.
//
//soravet:hotpath BenchmarkTimerReset AllocsPerRun pin: in-place re-key is the zero-alloc alternative to Cancel+Schedule
func (t *Timer) Reset(delay time.Duration) {
	if t == nil || t.index < 0 {
		panic("sim: Reset on a fired or cancelled timer")
	}
	if delay < 0 {
		delay = 0
	}
	k := t.k
	k.seq++
	t.at = k.now + delay
	t.seq = k.seq
	k.heapFix(t.index)
}

// Kernel is the discrete-event simulation core. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	seed      uint64
	events    []*Timer // inlined 4-ary min-heap on (at, seq)
	free      []*Timer // recycled Timer structs
	rng       *rand.Rand
	processed uint64
	stopped   bool
}

// NewKernel returns a kernel with virtual time 0 and a deterministic RNG
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		seed: seed,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All stochastic
// decisions in a simulation must come from this source (or a child source
// created via Split) to preserve reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Split derives an independent deterministic RNG stream from the kernel
// seed and the given label. The child stream depends only on (seed, label)
// — not on the parent stream's position or on how many other splits
// happened first — so adding a new consumer or reordering consumers does
// not perturb the samples seen by existing ones, and two kernels with the
// same seed hand every consumer the same stream regardless of split order.
func (k *Kernel) Split(label uint64) *rand.Rand {
	return rand.New(rand.NewPCG(splitMix64(k.seed^label), label^0xd1b54a32d192ed03))
}

// splitMix64 is the SplitMix64 finalizer, used to decorrelate the
// seed^label values fed to child PCG streams.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled. Cancelled
// timers are removed from the queue eagerly, so they never count.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events at
// the current instant). It returns a cancellable Timer.
func (k *Kernel) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in simulation logic; the kernel clamps it to "now" to keep time
// monotonic rather than panicking, since the only way it can occur is a
// rounding artefact in duration arithmetic. The Timer is drawn from the
// kernel's free list when one is available, so steady-state scheduling
// does not allocate.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	var tm *Timer
	if n := len(k.free); n > 0 {
		tm = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		tm.at = t
		tm.seq = k.seq
		tm.fn = fn
		tm.canceled = false
	} else {
		tm = &Timer{at: t, seq: k.seq, fn: fn, k: k} //soravet:allow hotpath pool miss: allocates only while the live-timer high-water mark rises, then the free list serves every Schedule
	}
	k.heapPush(tm)
	return tm
}

// releaseTimer returns a fired or cancelled timer struct to the free list.
// The caller must already have detached it from the heap.
func (k *Kernel) releaseTimer(t *Timer) {
	t.fn = nil
	//soravet:allow hotpath free-list append reuses capacity at steady state; grows only while the live-timer high-water mark rises
	k.free = append(k.free, t)
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed (false when the queue
// is empty or the kernel has been stopped). The fired timer struct is
// recycled before the callback runs, so a Schedule inside the callback
// reuses it immediately.
//
//soravet:hotpath BenchmarkEventLoop events/s headline: the pop-advance-dispatch loop runs once per simulated event
func (k *Kernel) Step() bool {
	if k.stopped || len(k.events) == 0 {
		return false
	}
	tm := k.heapPop()
	k.now = tm.at
	fn := tm.fn
	k.releaseTimer(tm)
	k.processed++
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to exactly deadline. Events scheduled for after deadline remain
// queued.
//
// If Stop fires mid-run (or the kernel was already stopped), RunUntil
// returns with the clock frozen at the timestamp of the last executed
// event — it is NOT advanced to deadline. This is deliberate: events in
// (now, deadline] are still queued, and advancing past them would make
// the clock run backwards when they eventually fire after Resume. A
// subsequent Resume + RunFor(d) therefore measures d from the stop
// point, not from the abandoned deadline; callers that want to finish
// the original window must Resume and call RunUntil with the same
// absolute deadline again.
func (k *Kernel) RunUntil(deadline Time) {
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d units of virtual time, measured
// from the current clock — after a mid-run Stop, that is the stop point
// (see RunUntil for the stop semantics).
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }

// Stop halts Run/RunUntil after the currently executing event returns,
// freezing the clock at that event's timestamp. Subsequent Step calls
// return false until the kernel is resumed with Resume.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a previous Stop.
func (k *Kernel) Resume() { k.stopped = false }

// Stopped reports whether the kernel is currently stopped.
func (k *Kernel) Stopped() bool { return k.stopped }

// The event queue: an inlined 4-ary min-heap over *Timer ordered by
// (at, seq). Children of slot i live at 4i+1..4i+4; the parent of slot i
// is (i-1)/4. Every slot's timer keeps its index field current so Cancel
// and Reset can locate it in O(1).

// timerLess orders timers by firing time, FIFO within the same instant.
func timerLess(a, b *Timer) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// heapPush appends t and sifts it up to its position.
func (k *Kernel) heapPush(t *Timer) {
	k.events = append(k.events, t) //soravet:allow hotpath heap append reuses capacity at steady state; grows only while the pending-timer high-water mark rises
	k.siftUp(len(k.events) - 1)
}

// heapPop removes and returns the minimum timer, marking it detached.
func (k *Kernel) heapPop() *Timer {
	h := k.events
	top := h[0]
	top.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	k.events = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		k.siftDown(0)
	}
	return top
}

// heapRemove detaches the timer at slot i, filling the hole with the last
// element and re-sifting it.
func (k *Kernel) heapRemove(i int) {
	h := k.events
	h[i].index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	k.events = h[:n]
	if i < n {
		h[i] = last
		last.index = i
		k.heapFix(i)
	}
}

// heapFix restores heap order for slot i after its key changed in place.
func (k *Kernel) heapFix(i int) {
	if !k.siftDown(i) {
		k.siftUp(i)
	}
}

// siftUp moves the timer at slot i toward the root until its parent is
// not greater.
func (k *Kernel) siftUp(i int) {
	h := k.events
	t := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = t
	t.index = i
}

// siftDown moves the timer at slot i toward the leaves until no child is
// smaller, reporting whether it moved.
func (k *Kernel) siftDown(i int) bool {
	h := k.events
	n := len(h)
	t := h[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], t) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = t
	t.index = i
	return i != start
}

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	k        *Kernel
	interval time.Duration
	fn       func()
	fireFn   func() // bound once so re-arming allocates nothing
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. It panics if interval is not positive, since a
// non-positive tick would wedge the simulation at the current instant.
func (k *Kernel) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	if fn == nil {
		panic("sim: Every called with nil callback")
	}
	t := &Ticker{k: k, interval: interval, fn: fn}
	t.fireFn = t.fire
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.k.Schedule(t.interval, t.fireFn)
}

// fire runs one tick. The timer field is cleared before the user callback
// runs: the fired timer struct is already back on the kernel's free list,
// and anything the callback schedules may legitimately reuse it.
func (t *Ticker) fire() {
	t.timer = nil
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop prevents any further firings. Safe to call multiple times and from
// within the ticker callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
}
