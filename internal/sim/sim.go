// Package sim provides the discrete-event simulation kernel that drives the
// entire Sora reproduction: a virtual clock, an event queue with
// deterministic FIFO tie-breaking, cancellable timers, periodic tickers and
// a seeded random number generator.
//
// All simulated components (cluster instances, workload generators,
// controllers, samplers) schedule callbacks on a single Kernel. Events fire
// in nondecreasing virtual-time order; events scheduled for the same instant
// fire in the order they were scheduled, which makes every run bit-for-bit
// reproducible for a given seed.
//
// The kernel is intentionally single-threaded: determinism matters more
// than parallel speedup for reproducing the paper's figures, and a single
// 12-minute trace-driven experiment completes in a few wall-clock seconds.
// Parallelism lives one layer up: independent simulations (one Kernel per
// goroutine, nothing shared) scale across cores embarrassingly; see the
// experiment package's runner.
//
// History note: Split originally drew its child seed from the parent RNG
// stream, so the *order* of Split calls perturbed both the parent stream
// and every later split. Split streams are now derived purely from the
// kernel seed and the label, so equal (seed, label) always yields the
// same stream regardless of when or in what order splits happen. Runs
// seeded identically before and after this fix produce different (but
// equally valid) sample paths.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual timestamp measured as the duration elapsed since the
// start of the simulation (t=0). Using time.Duration keeps arithmetic with
// intervals trivial and formatting human-readable.
type Time = time.Duration

// Timer is a handle for a scheduled event. A Timer can be cancelled before
// it fires; cancelling a fired or already-cancelled timer is a no-op.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	k        *Kernel
	index    int // position in the heap, -1 once removed
	canceled bool
}

// Cancel prevents the timer's callback from running and removes the timer
// from the event queue immediately, so far-future timers that are almost
// always cancelled (timeouts, deadlines) do not accumulate in the heap.
// It is safe to call multiple times and after the timer has fired.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	t.canceled = true
	t.fn = nil
	if t.index >= 0 && t.k != nil {
		heap.Remove(&t.k.events, t.index)
	}
}

// Canceled reports whether Cancel was called on the timer.
func (t *Timer) Canceled() bool { return t.canceled }

// When returns the virtual time the timer is (or was) scheduled to fire at.
func (t *Timer) When() Time { return t.at }

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Kernel is the discrete-event simulation core. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now       Time
	seq       uint64
	seed      uint64
	events    eventHeap
	rng       *rand.Rand
	processed uint64
	stopped   bool
}

// NewKernel returns a kernel with virtual time 0 and a deterministic RNG
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		seed: seed,
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All stochastic
// decisions in a simulation must come from this source (or a child source
// created via Split) to preserve reproducibility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Split derives an independent deterministic RNG stream from the kernel
// seed and the given label. The child stream depends only on (seed, label)
// — not on the parent stream's position or on how many other splits
// happened first — so adding a new consumer or reordering consumers does
// not perturb the samples seen by existing ones, and two kernels with the
// same seed hand every consumer the same stream regardless of split order.
func (k *Kernel) Split(label uint64) *rand.Rand {
	return rand.New(rand.NewPCG(splitMix64(k.seed^label), label^0xd1b54a32d192ed03))
}

// splitMix64 is the SplitMix64 finalizer, used to decorrelate the
// seed^label values fed to child PCG streams.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled. Cancelled
// timers are removed from the queue eagerly, so they never count.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn after delay units of virtual time. A negative delay is
// treated as zero (fire as soon as possible, after already-queued events at
// the current instant). It returns a cancellable Timer.
func (k *Kernel) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past is an
// error in simulation logic; the kernel clamps it to "now" to keep time
// monotonic rather than panicking, since the only way it can occur is a
// rounding artefact in duration arithmetic.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	tm := &Timer{at: t, seq: k.seq, fn: fn, k: k}
	heap.Push(&k.events, tm)
	return tm
}

// Step executes the next pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed (false when the queue
// is empty or the kernel has been stopped).
func (k *Kernel) Step() bool {
	for len(k.events) > 0 && !k.stopped {
		tm := heap.Pop(&k.events).(*Timer)
		if tm.canceled {
			continue
		}
		k.now = tm.at
		fn := tm.fn
		tm.fn = nil
		k.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances
// the clock to exactly deadline. Events scheduled for after deadline remain
// queued.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.events) > 0 && !k.stopped {
		next := k.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
}

// RunFor advances the simulation by d units of virtual time.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }

// Stop halts Run/RunUntil after the currently executing event returns.
// Subsequent Step calls return false until the kernel is resumed with
// Resume.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a previous Stop.
func (k *Kernel) Resume() { k.stopped = false }

// peek returns the earliest pending timer without removing it. Cancelled
// timers are removed from the heap eagerly by Cancel, so the top of the
// heap is always live (the drain loop is defensive).
func (k *Kernel) peek() *Timer {
	for len(k.events) > 0 {
		top := k.events[0]
		if !top.canceled {
			return top
		}
		heap.Pop(&k.events)
	}
	return nil
}

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	k        *Kernel
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. It panics if interval is not positive, since a
// non-positive tick would wedge the simulation at the current instant.
func (k *Kernel) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive interval %v", interval))
	}
	if fn == nil {
		panic("sim: Every called with nil callback")
	}
	t := &Ticker{k: k, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.k.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents any further firings. Safe to call multiple times and from
// within the ticker callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}
