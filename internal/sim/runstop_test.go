package sim_test

import (
	"testing"
	"time"

	"sora/internal/sim"
)

// TestStopFreezesClockThenRunForResumesFromStopPoint pins the documented
// Stop semantics: a Stop during RunUntil freezes the clock at the last
// executed event (NOT the abandoned deadline), and a later Resume +
// RunFor measures its window from that stop point, so the events parked
// between the stop point and the old deadline still fire in order.
func TestStopFreezesClockThenRunForResumesFromStopPoint(t *testing.T) {
	k := sim.NewKernel(1)
	var fired []time.Duration
	for _, at := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
	} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.At(10*time.Millisecond, k.Stop)

	k.RunUntil(50 * time.Millisecond)
	if !k.Stopped() {
		t.Fatal("kernel should be stopped")
	}
	if got := k.Now(); got != 10*time.Millisecond {
		t.Fatalf("clock after mid-run Stop = %v, want frozen at 10ms (not advanced to the 50ms deadline)", got)
	}
	if len(fired) != 1 || fired[0] != 10*time.Millisecond {
		t.Fatalf("fired before stop = %v, want exactly the 10ms event", fired)
	}

	// RunFor while stopped is a no-op: the clock must not drift.
	k.RunFor(30 * time.Millisecond)
	if got := k.Now(); got != 10*time.Millisecond {
		t.Fatalf("clock after RunFor on stopped kernel = %v, want 10ms", got)
	}

	// Resume + RunFor measures from the stop point: 10ms + 15ms covers
	// the 20ms event but not the 40ms one.
	k.Resume()
	k.RunFor(15 * time.Millisecond)
	if got := k.Now(); got != 25*time.Millisecond {
		t.Fatalf("clock after Resume+RunFor(15ms) = %v, want 25ms", got)
	}
	if len(fired) != 2 || fired[1] != 20*time.Millisecond {
		t.Fatalf("fired after resume = %v, want the 20ms event next", fired)
	}

	// Finishing the original window still works by re-running to the
	// same absolute deadline.
	k.RunUntil(50 * time.Millisecond)
	if got := k.Now(); got != 50*time.Millisecond {
		t.Fatalf("clock after final RunUntil = %v, want 50ms", got)
	}
	if len(fired) != 3 || fired[2] != 40*time.Millisecond {
		t.Fatalf("fired after final RunUntil = %v, want all three events", fired)
	}
}
