package sim_test

import (
	"testing"
	"time"

	"sora/internal/sim"
)

// benchDelays is a fixed mix of near- and far-term delays so heap
// operations land at different depths; indexed with i&7.
var benchDelays = [8]time.Duration{
	13 * time.Microsecond, 2 * time.Millisecond, 700 * time.Nanosecond,
	41 * time.Millisecond, 3 * time.Microsecond, 911 * time.Microsecond,
	95 * time.Microsecond, 6 * time.Millisecond,
}

// BenchmarkScheduleRun measures the schedule→pop→dispatch cycle with a
// self-refilling queue of 256 pending timers: the kernel event loop in
// its steady-state regime. One op = one event.
func BenchmarkScheduleRun(b *testing.B) {
	k := sim.NewKernel(1)
	remaining := b.N
	i := 0
	var fire func()
	fire = func() {
		if remaining == 0 {
			return
		}
		remaining--
		k.Schedule(benchDelays[i&7], fire)
		i++
	}
	for j := 0; j < 256; j++ {
		k.Schedule(benchDelays[j&7], fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkTimerReset measures re-keying a pending timer in place
// against a 256-timer population — the PS-server reschedule pattern.
func BenchmarkTimerReset(b *testing.B) {
	k := sim.NewKernel(1)
	nop := func() {}
	for j := 0; j < 255; j++ {
		k.Schedule(benchDelays[j&7], nop)
	}
	t := k.Schedule(time.Hour, nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(benchDelays[i&7])
	}
}

// BenchmarkScheduleCancel measures the schedule-then-cancel round trip —
// the timeout-timer pattern.
func BenchmarkScheduleCancel(b *testing.B) {
	k := sim.NewKernel(1)
	nop := func() {}
	for j := 0; j < 256; j++ {
		k.Schedule(benchDelays[j&7], nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(benchDelays[i&7], nop).Cancel()
	}
}

// TestScheduleSteadyStateAllocFree pins the free-list guarantee: once
// the pool is warm, schedule→fire churn performs zero allocations per
// event.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	k := sim.NewKernel(1)
	nop := func() {}
	for i := 0; i < 64; i++ {
		k.Schedule(benchDelays[i&7], nop)
	}
	k.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Microsecond, nop)
		k.Step()
	}); avg != 0 {
		t.Fatalf("schedule+fire allocates %.2f objects per event, want 0", avg)
	}
}

// TestCancelSteadyStateAllocFree pins that the schedule→cancel round
// trip recycles through the free list without allocating.
func TestCancelSteadyStateAllocFree(t *testing.T) {
	k := sim.NewKernel(1)
	nop := func() {}
	k.Schedule(time.Microsecond, nop).Cancel()
	if avg := testing.AllocsPerRun(1000, func() {
		k.Schedule(time.Microsecond, nop).Cancel()
	}); avg != 0 {
		t.Fatalf("schedule+cancel allocates %.2f objects per cycle, want 0", avg)
	}
}

// TestResetAllocFree pins that Reset never allocates: it re-keys the
// timer in place with a single sift.
func TestResetAllocFree(t *testing.T) {
	k := sim.NewKernel(1)
	nop := func() {}
	for i := 0; i < 32; i++ {
		k.Schedule(benchDelays[i&7], nop)
	}
	tm := k.Schedule(time.Hour, nop)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		tm.Reset(benchDelays[i&7])
		i++
	}); avg != 0 {
		t.Fatalf("Reset allocates %.2f objects per call, want 0", avg)
	}
}
