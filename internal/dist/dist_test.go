package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(11, 17)) }

// sampleMean draws n samples and returns the empirical mean.
func sampleMean(d Distribution, n int) time.Duration {
	rng := newRNG()
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	return time.Duration(sum / float64(n))
}

// within asserts |got-want| <= tol*want.
func within(t *testing.T, name string, got, want time.Duration, tol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s: got %v, want 0", name, got)
		}
		return
	}
	diff := math.Abs(float64(got) - float64(want))
	if diff > tol*float64(want) {
		t.Errorf("%s: empirical mean %v deviates from %v by more than %.0f%%", name, got, want, tol*100)
	}
}

func TestMeansConvergeToDeclaredMean(t *testing.T) {
	tests := []struct {
		name string
		d    Distribution
		tol  float64
	}{
		{"deterministic", NewDeterministic(10 * time.Millisecond), 0.0},
		{"exponential", NewExponential(5 * time.Millisecond), 0.05},
		{"uniform", NewUniform(2*time.Millisecond, 8*time.Millisecond), 0.05},
		{"lognormal", NewLogNormal(20*time.Millisecond, 0.5), 0.05},
		{"erlang", NewErlang(4, 12*time.Millisecond), 0.05},
		{"scaled", NewScaled(NewExponential(4*time.Millisecond), 2.5), 0.05},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			within(t, tt.name, sampleMean(tt.d, 200_000), tt.d.Mean(), tt.tol+1e-12)
		})
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	d := NewPareto(time.Millisecond, 100*time.Millisecond, 1.5)
	rng := newRNG()
	for i := 0; i < 100_000; i++ {
		v := d.Sample(rng)
		if v < d.Min || v > d.Max {
			t.Fatalf("pareto sample %v outside [%v,%v]", v, d.Min, d.Max)
		}
	}
	within(t, "pareto", sampleMean(d, 400_000), d.Mean(), 0.05)
}

func TestParetoDegenerate(t *testing.T) {
	d := NewPareto(5*time.Millisecond, 5*time.Millisecond, 2)
	if got := d.Sample(newRNG()); got != 5*time.Millisecond {
		t.Errorf("degenerate pareto sample = %v, want 5ms", got)
	}
	if got := d.Mean(); got != 5*time.Millisecond {
		t.Errorf("degenerate pareto mean = %v, want 5ms", got)
	}
}

func TestNonNegativeSamples(t *testing.T) {
	dists := []Distribution{
		NewDeterministic(-time.Second),
		NewExponential(time.Millisecond),
		NewUniform(-time.Second, time.Second),
		NewLogNormal(time.Millisecond, 2.0),
		NewPareto(0, time.Second, 0.8),
		NewErlang(3, time.Millisecond),
		NewScaled(NewExponential(time.Millisecond), 0.001),
	}
	rng := newRNG()
	for _, d := range dists {
		for i := 0; i < 10_000; i++ {
			if v := d.Sample(rng); v < 0 {
				t.Fatalf("%v produced negative sample %v", d, v)
			}
		}
	}
}

func TestZeroMeanDistributions(t *testing.T) {
	rng := newRNG()
	for _, d := range []Distribution{
		NewExponential(0),
		NewLogNormal(0, 0.5),
		NewErlang(2, 0),
	} {
		for i := 0; i < 100; i++ {
			if v := d.Sample(rng); v != 0 {
				t.Errorf("%v with zero mean produced %v", d, v)
			}
		}
	}
}

func TestUniformSwapsBounds(t *testing.T) {
	d := NewUniform(9*time.Millisecond, 3*time.Millisecond)
	if d.Low != 3*time.Millisecond || d.High != 9*time.Millisecond {
		t.Errorf("bounds not swapped: low=%v high=%v", d.Low, d.High)
	}
}

func TestEmpirical(t *testing.T) {
	vals := []time.Duration{time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond}
	d, err := NewEmpirical(vals)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 3*time.Millisecond {
		t.Errorf("mean = %v, want 3ms", d.Mean())
	}
	rng := newRNG()
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		seen[v] = true
		found := false
		for _, want := range vals {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("sample %v not in source set", v)
		}
	}
	if len(seen) != 3 {
		t.Errorf("only %d distinct values sampled, want 3", len(seen))
	}
}

func TestEmpiricalEmptyErrors(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("expected error for empty empirical distribution")
	}
}

func TestEmpiricalCopiesInput(t *testing.T) {
	vals := []time.Duration{5 * time.Millisecond, time.Millisecond}
	d, err := NewEmpirical(vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = time.Hour
	rng := newRNG()
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v == time.Hour {
			t.Fatal("empirical distribution aliases caller slice")
		}
	}
}

func TestErlangLowerVarianceThanExponential(t *testing.T) {
	mean := 10 * time.Millisecond
	varOf := func(d Distribution, n int) float64 {
		rng := newRNG()
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := float64(d.Sample(rng))
			sum += v
			sumsq += v * v
		}
		m := sum / float64(n)
		return sumsq/float64(n) - m*m
	}
	ve := varOf(NewExponential(mean), 100_000)
	vk := varOf(NewErlang(4, mean), 100_000)
	if vk >= ve {
		t.Errorf("Erlang-4 variance %g not below exponential variance %g", vk, ve)
	}
}

func TestScaledFactorClamp(t *testing.T) {
	d := NewScaled(NewDeterministic(time.Second), -2)
	if v := d.Sample(newRNG()); v != 0 {
		t.Errorf("negative factor sample = %v, want 0", v)
	}
}

func TestLogNormalSigmaZeroIsDeterministic(t *testing.T) {
	d := NewLogNormal(7*time.Millisecond, 0)
	rng := newRNG()
	for i := 0; i < 100; i++ {
		if v := d.Sample(rng); v != 7*time.Millisecond {
			t.Errorf("sigma=0 sample = %v, want 7ms", v)
		}
	}
}

func TestStringsNonEmpty(t *testing.T) {
	emp, _ := NewEmpirical([]time.Duration{time.Millisecond})
	for _, d := range []Distribution{
		NewDeterministic(time.Second),
		NewExponential(time.Second),
		NewUniform(0, time.Second),
		NewLogNormal(time.Second, 1),
		NewPareto(time.Millisecond, time.Second, 2),
		NewErlang(2, time.Second),
		emp,
		NewScaled(NewDeterministic(time.Second), 2),
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

// Property: scaling by f multiplies the mean by f (within sampling noise).
func TestQuickScaledMean(t *testing.T) {
	f := func(rawMean uint16, rawFactor uint8) bool {
		mean := time.Duration(rawMean) * time.Microsecond
		factor := float64(rawFactor%50) / 10.0
		d := NewScaled(NewDeterministic(mean), factor)
		want := time.Duration(float64(mean) * factor)
		got := d.Sample(newRNG())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: uniform samples always land inside the (normalised) bounds.
func TestQuickUniformInBounds(t *testing.T) {
	f := func(a, b uint32) bool {
		lo := time.Duration(a)
		hi := time.Duration(b)
		d := NewUniform(lo, hi)
		rng := newRNG()
		for i := 0; i < 50; i++ {
			v := d.Sample(rng)
			if v < d.Low || v > d.High {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLogNormalSample(b *testing.B) {
	d := NewLogNormal(10*time.Millisecond, 0.5)
	rng := newRNG()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Sample(rng)
	}
}
