// Package dist provides the sampling distributions used to model service
// demands, think times and payload sizes in the simulated microservice
// cluster. Every distribution draws from an externally supplied
// *rand.Rand so that the whole simulation remains deterministic for a
// given kernel seed.
//
// All samplers return time.Duration values and guarantee a non-negative
// result; a duration of zero is valid (e.g. a cache hit modelled as free).
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// Distribution samples virtual-time durations.
type Distribution interface {
	// Sample draws one value using the provided random source.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution's expected value.
	Mean() time.Duration
	// String returns a compact human-readable description.
	String() string
}

// Deterministic always returns a fixed value.
type Deterministic struct {
	Value time.Duration
}

// NewDeterministic returns a point-mass distribution at v (clamped to >= 0).
func NewDeterministic(v time.Duration) Deterministic {
	if v < 0 {
		v = 0
	}
	return Deterministic{Value: v}
}

// Sample implements Distribution.
func (d Deterministic) Sample(*rand.Rand) time.Duration { return d.Value }

// Mean implements Distribution.
func (d Deterministic) Mean() time.Duration { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%v)", d.Value) }

// Exponential is the memoryless distribution with the given mean.
type Exponential struct {
	MeanValue time.Duration
}

// NewExponential returns an exponential distribution with mean m.
func NewExponential(m time.Duration) Exponential {
	if m < 0 {
		m = 0
	}
	return Exponential{MeanValue: m}
}

// Sample implements Distribution.
func (d Exponential) Sample(rng *rand.Rand) time.Duration {
	if d.MeanValue == 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(d.MeanValue))
}

// Mean implements Distribution.
func (d Exponential) Mean() time.Duration { return d.MeanValue }

func (d Exponential) String() string { return fmt.Sprintf("exp(%v)", d.MeanValue) }

// Uniform draws uniformly from [Low, High].
type Uniform struct {
	Low  time.Duration
	High time.Duration
}

// NewUniform returns a uniform distribution on [low, high]; the bounds are
// swapped if given in the wrong order and clamped to >= 0.
func NewUniform(low, high time.Duration) Uniform {
	if low > high {
		low, high = high, low
	}
	if low < 0 {
		low = 0
	}
	if high < 0 {
		high = 0
	}
	return Uniform{Low: low, High: high}
}

// Sample implements Distribution.
func (d Uniform) Sample(rng *rand.Rand) time.Duration {
	span := d.High - d.Low
	if span <= 0 {
		return d.Low
	}
	return d.Low + time.Duration(rng.Int64N(int64(span)+1))
}

// Mean implements Distribution.
func (d Uniform) Mean() time.Duration { return (d.Low + d.High) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", d.Low, d.High) }

// LogNormal models service demands with a right-skewed body, the typical
// shape of CPU demand in request processing. It is parameterised by its
// (linear-space) mean and the sigma of the underlying normal.
type LogNormal struct {
	MeanValue time.Duration
	Sigma     float64
	mu        float64
}

// NewLogNormal returns a log-normal distribution with the given linear-space
// mean and log-space standard deviation sigma. Sigma around 0.3-0.6 gives a
// moderately skewed demand; sigma 1.0+ is heavy-tailed.
func NewLogNormal(mean time.Duration, sigma float64) LogNormal {
	if mean < 0 {
		mean = 0
	}
	if sigma < 0 {
		sigma = 0
	}
	d := LogNormal{MeanValue: mean, Sigma: sigma}
	if mean > 0 {
		// E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
		d.mu = math.Log(float64(mean)) - sigma*sigma/2
	}
	return d
}

// Sample implements Distribution.
func (d LogNormal) Sample(rng *rand.Rand) time.Duration {
	if d.MeanValue == 0 {
		return 0
	}
	if d.Sigma == 0 {
		return d.MeanValue
	}
	x := math.Exp(d.mu + d.Sigma*rng.NormFloat64())
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(x)
}

// Mean implements Distribution.
func (d LogNormal) Mean() time.Duration { return d.MeanValue }

func (d LogNormal) String() string {
	return fmt.Sprintf("lognormal(mean=%v,sigma=%.2f)", d.MeanValue, d.Sigma)
}

// Pareto is a bounded Pareto distribution for heavy-tailed demands (e.g.
// fan-out queries that occasionally touch a large dataset). The tail is
// truncated at Max to keep simulated experiments finite.
type Pareto struct {
	Min   time.Duration
	Max   time.Duration
	Alpha float64
}

// NewPareto returns a bounded Pareto on [min, max] with shape alpha.
// Alpha <= 1 has an unbounded theoretical mean, hence the bound.
func NewPareto(min, max time.Duration, alpha float64) Pareto {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	if alpha <= 0 {
		alpha = 1.5
	}
	return Pareto{Min: min, Max: max, Alpha: alpha}
}

// Sample implements Distribution.
func (d Pareto) Sample(rng *rand.Rand) time.Duration {
	if d.Min == d.Max {
		return d.Min
	}
	l := float64(d.Min)
	h := float64(d.Max)
	u := rng.Float64()
	// Inverse CDF of bounded Pareto.
	la := math.Pow(l, d.Alpha)
	ha := math.Pow(h, d.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/d.Alpha)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return time.Duration(x)
}

// Mean implements Distribution.
func (d Pareto) Mean() time.Duration {
	if d.Min == d.Max {
		return d.Min
	}
	l := float64(d.Min)
	h := float64(d.Max)
	a := d.Alpha
	if a == 1 {
		la := math.Pow(l, a)
		ha := math.Pow(h, a)
		return time.Duration(ha * la / (ha - la) * math.Log(h/l))
	}
	la := math.Pow(l, a)
	ha := math.Pow(h, a)
	m := la / (1 - math.Pow(l/h, a)) * (a / (a - 1)) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	_ = ha
	return time.Duration(m)
}

func (d Pareto) String() string {
	return fmt.Sprintf("pareto(%v,%v,alpha=%.2f)", d.Min, d.Max, d.Alpha)
}

// Erlang is the sum of K independent exponentials, giving a demand with a
// coefficient of variation below 1 (more regular than exponential).
type Erlang struct {
	K         int
	MeanValue time.Duration
}

// NewErlang returns an Erlang-k distribution with the given overall mean.
func NewErlang(k int, mean time.Duration) Erlang {
	if k < 1 {
		k = 1
	}
	if mean < 0 {
		mean = 0
	}
	return Erlang{K: k, MeanValue: mean}
}

// Sample implements Distribution.
func (d Erlang) Sample(rng *rand.Rand) time.Duration {
	if d.MeanValue == 0 {
		return 0
	}
	phaseMean := float64(d.MeanValue) / float64(d.K)
	var total float64
	for i := 0; i < d.K; i++ {
		total += rng.ExpFloat64() * phaseMean
	}
	return time.Duration(total)
}

// Mean implements Distribution.
func (d Erlang) Mean() time.Duration { return d.MeanValue }

func (d Erlang) String() string { return fmt.Sprintf("erlang(k=%d,mean=%v)", d.K, d.MeanValue) }

// Empirical samples uniformly from a fixed set of observed values. It is
// used to replay measured demand profiles.
type Empirical struct {
	values []time.Duration
	mean   time.Duration
}

// NewEmpirical returns a distribution over the given observations. It
// copies the slice (values sorted for reproducible summaries) and returns
// an error if no observations are provided.
func NewEmpirical(values []time.Duration) (Empirical, error) {
	if len(values) == 0 {
		return Empirical{}, fmt.Errorf("dist: empirical distribution requires at least one value")
	}
	vs := make([]time.Duration, len(values))
	copy(vs, values)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var sum time.Duration
	for i, v := range vs {
		if v < 0 {
			vs[i] = 0
			v = 0
		}
		sum += v
	}
	return Empirical{values: vs, mean: sum / time.Duration(len(vs))}, nil
}

// Sample implements Distribution.
func (d Empirical) Sample(rng *rand.Rand) time.Duration {
	if len(d.values) == 0 {
		return 0
	}
	return d.values[rng.IntN(len(d.values))]
}

// Mean implements Distribution.
func (d Empirical) Mean() time.Duration { return d.mean }

func (d Empirical) String() string {
	return fmt.Sprintf("empirical(n=%d,mean=%v)", len(d.values), d.mean)
}

// Scaled wraps a distribution and multiplies every sample by Factor. It is
// the mechanism behind "system state drifting": a request type whose
// computation grows (e.g. 2 posts -> 10 posts) is the base demand scaled up.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// NewScaled returns d scaled by factor (clamped to >= 0).
func NewScaled(d Distribution, factor float64) Scaled {
	if factor < 0 {
		factor = 0
	}
	return Scaled{Base: d, Factor: factor}
}

// Sample implements Distribution.
func (d Scaled) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(float64(d.Base.Sample(rng)) * d.Factor)
}

// Mean implements Distribution.
func (d Scaled) Mean() time.Duration {
	return time.Duration(float64(d.Base.Mean()) * d.Factor)
}

func (d Scaled) String() string { return fmt.Sprintf("scaled(%v,x%.2f)", d.Base, d.Factor) }

// Verify interface compliance at compile time.
var (
	_ Distribution = Deterministic{}
	_ Distribution = Exponential{}
	_ Distribution = Uniform{}
	_ Distribution = LogNormal{}
	_ Distribution = Pareto{}
	_ Distribution = Erlang{}
	_ Distribution = Empirical{}
	_ Distribution = Scaled{}
)
