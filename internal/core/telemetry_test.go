package core

import (
	"testing"
	"time"

	"sora/internal/cluster"
	"sora/internal/knee"
	"sora/internal/sim"
	"sora/internal/telemetry"
	"sora/internal/topology"
	"sora/internal/workload"
)

// newAuditRig is newCartRig plus a telemetry recorder on the cluster, for
// the controller decision-audit tests.
func newAuditRig(t *testing.T, seed uint64, threads, users int) (*cartRig, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.NewRecorder("audit")
	k := sim.NewKernel(seed)
	cfg := topology.DefaultSockShop()
	cfg.CartThreads = threads
	cfg.CartCores = 2
	app := topology.SockShop(cfg)
	app.Mix = topology.CartOnlyMix(app)
	c, err := cluster.New(k, app, cluster.Options{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.ResourceRef{Service: topology.Cart, Kind: cluster.PoolThreads}
	mon, err := NewMonitor(c, 0, []cluster.ResourceRef{ref}, c.ServiceNames())
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	loop, err := workload.NewClosedLoop(k, workload.ClosedLoopConfig{
		Target: workload.ConstantUsers(users),
		Submit: func(done func()) { c.SubmitMixWith(done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Start()
	return &cartRig{k: k, c: c, mon: mon, loop: loop, ref: ref}, rec
}

// decisions filters the recorder's event stream down to one kind.
func eventsOfKind(rec *telemetry.Recorder, kind string) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range rec.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// attrMap flattens an event's attributes for assertion convenience.
func attrMap(ev telemetry.Event) map[string]string {
	m := make(map[string]string, len(ev.Attrs))
	for _, a := range ev.Attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// TestControllerDecisionAudit verifies that every post-warmup adapt step
// emits exactly one controller.decision event carrying the model's full
// inputs, that the first evaluation applies and subsequent steady-state
// evaluations hold, and that Events() stays consistent with the audit.
func TestControllerDecisionAudit(t *testing.T) {
	r, rec := newAuditRig(t, 21, 5, 100)
	model := &fixedModel{rec: Recommendation{
		CriticalService:    topology.Cart,
		Resource:           r.ref,
		OptimalConcurrency: 25,
		Threshold:          100 * time.Millisecond,
		Knee:               knee.Result{X: 25.4, Y: 800},
		Pairs:              600,
		GoodFrac:           0.95,
		MaxQWindow:         30,
		MaxQRetention:      32,
	}}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(30 * time.Second)
	ctl.Stop()
	r.shutdown()

	decisions := eventsOfKind(rec, "controller.decision")
	if len(decisions) != model.call {
		t.Fatalf("decision events = %d, model consultations = %d; want exactly one per adapt step",
			len(decisions), model.call)
	}
	if len(decisions) < 2 {
		t.Fatalf("only %d adapt steps in 30s at 5s period", len(decisions))
	}
	// Events must be in virtual-time order.
	for i := 1; i < len(decisions); i++ {
		if decisions[i].At < decisions[i-1].At {
			t.Fatalf("decision %d at %v precedes %d at %v", i, decisions[i].At, i-1, decisions[i-1].At)
		}
	}
	// String attributes render JSON-quoted via Attr.Value.
	first := attrMap(decisions[0])
	wantFirst := map[string]string{
		"applied":  "true",
		"reason":   `"apply-knee"`,
		"branch":   `"apply-knee"`,
		"current":  "5",
		"target":   "25",
		"to":       "25",
		"delta":    "20",
		"opt":      "25",
		"critical": `"cart"`,
		"pairs":    "600",
		"knee_x":   "25.4",
	}
	for k, want := range wantFirst {
		if got := first[k]; got != want {
			t.Errorf("first decision %s = %s, want %s", k, got, want)
		}
	}
	if first["threshold_ms"] != "100" {
		t.Errorf("threshold_ms = %s, want 100", first["threshold_ms"])
	}
	// Steady state afterwards: model keeps recommending 25, pool is 25,
	// so every later decision must be a hold with applied=false.
	for i, d := range decisions[1:] {
		m := attrMap(d)
		if m["applied"] != "false" || m["reason"] != `"hold-steady"` {
			t.Errorf("decision %d: applied=%s reason=%s, want false/hold-steady", i+1, m["applied"], m["reason"])
		}
	}
	// Exactly one adaptation event recorded by the controller, matching
	// the one applied decision.
	if n := len(ctl.Events()); n != 1 {
		t.Fatalf("ctl.Events() = %d, want 1", n)
	}
	ev := ctl.Events()[0]
	if ev.From != 5 || ev.To != 25 || ev.CriticalService != topology.Cart || ev.Pairs != 600 {
		t.Errorf("adaptation event = %+v", ev)
	}
}

// TestControllerErrorAudit verifies failed model consultations publish
// controller.error events with the stage that failed.
func TestControllerErrorAudit(t *testing.T) {
	r, rec := newAuditRig(t, 22, 5, 100)
	model := &fixedModel{err: errForTest}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(16 * time.Second)
	ctl.Stop()
	r.shutdown()

	errs := eventsOfKind(rec, "controller.error")
	if len(errs) == 0 {
		t.Fatal("no controller.error events for a failing model")
	}
	if len(eventsOfKind(rec, "controller.decision")) != 0 {
		t.Error("decision events published despite recommend failures")
	}
	m := attrMap(errs[0])
	if m["stage"] != `"recommend"` {
		t.Errorf("stage = %s, want \"recommend\"", m["stage"])
	}
	if m["error"] == "" {
		t.Error("error attribute missing")
	}
}
