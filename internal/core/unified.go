package core

import (
	"fmt"
	"time"

	"sora/internal/cluster"
	"sora/internal/sim"
	"sora/internal/telemetry"
)

// UnifiedController implements the joint optimization the paper leaves as
// future work ("A unified controller can potentially be an ideal solution
// for this joint optimization problem", section 4.1): instead of an
// independent hardware autoscaler whose changes the Concurrency Adapter
// chases one control period later, a single decision loop moves hardware
// and soft resources together.
//
// The coordination rules:
//
//   - When deadlines are missed and the capacity behind the pool is
//     hardware-bound, it scales the CPU ladder up AND immediately
//     rescales the pool proportionally to the new capacity — the
//     post-scale optimum the SCG model would otherwise need a window of
//     fresh samples to discover.
//   - When the system is healthy and cold, it steps the ladder down and
//     shrinks the pool in the same action, avoiding the window where
//     de-provisioned hardware runs with an oversized pool.
//   - Otherwise it applies the same soft-resource policy as the
//     independent Controller.
type UnifiedController struct {
	c   *cluster.Cluster
	cfg UnifiedConfig

	ticker  *sim.Ticker
	running bool
	started sim.Time
	level   int
	calm    int

	events       []AdaptationEvent
	hwChanges    int
	errs         int
	lastErr      error
	shrinkStreak int
}

// UnifiedConfig configures the unified controller.
type UnifiedConfig struct {
	// Model drives estimation (SCG in practice). Required.
	Model Model
	// Managed lists the adaptable soft resources (required, the first
	// entry is the primary knob used during coordinated scaling).
	Managed []ManagedResource
	// Service is the hardware-scaled microservice (required).
	Service string
	// Ladder is the ordered CPU-limit ladder; empty selects {2, 4}.
	Ladder []float64
	// SLO is the end-to-end objective that defines violation (required).
	SLO time.Duration
	// DownUtil and DownAfter gate hardware scale-down; zeros select 0.35
	// and 4 calm periods.
	DownUtil  float64
	DownAfter int
	// Period and Warmup as in ControllerConfig.
	Period time.Duration
	Warmup time.Duration
}

// NewUnified wires a unified controller to the cluster.
func NewUnified(c *cluster.Cluster, cfg UnifiedConfig) (*UnifiedController, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: unified controller needs a model")
	}
	if len(cfg.Managed) == 0 {
		return nil, fmt.Errorf("core: unified controller needs managed resources")
	}
	svc, err := c.Service(cfg.Service)
	if err != nil {
		return nil, err
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("core: unified controller needs a positive SLO")
	}
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = []float64{2, 4}
	}
	for i := 1; i < len(cfg.Ladder); i++ {
		if cfg.Ladder[i] <= cfg.Ladder[i-1] {
			return nil, fmt.Errorf("core: ladder must be strictly increasing, got %v", cfg.Ladder)
		}
	}
	if cfg.DownUtil <= 0 {
		cfg.DownUtil = 0.35
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 4
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultControlPeriod
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 60 * time.Second
	}
	u := &UnifiedController{c: c, cfg: cfg}
	cores := svc.Cores()
	for i, v := range cfg.Ladder {
		if v <= cores {
			u.level = i
		}
	}
	return u, nil
}

// Start begins the joint control loop. Idempotent.
func (u *UnifiedController) Start() {
	if u.running {
		return
	}
	u.running = true
	u.started = u.c.Kernel().Now()
	u.ticker = u.c.Kernel().Every(u.cfg.Period, u.step)
}

// Stop halts the loop.
func (u *UnifiedController) Stop() {
	if !u.running {
		return
	}
	u.running = false
	u.ticker.Stop()
}

// Events returns the soft-resource adaptations applied so far.
func (u *UnifiedController) Events() []AdaptationEvent {
	out := make([]AdaptationEvent, len(u.events))
	copy(out, u.events)
	return out
}

// HardwareChanges returns the number of CPU-ladder moves.
func (u *UnifiedController) HardwareChanges() int { return u.hwChanges }

// ModelErrors returns the failed-recommendation count and last error.
func (u *UnifiedController) ModelErrors() (int, error) { return u.errs, u.lastErr }

func (u *UnifiedController) step() {
	now := u.c.Kernel().Now()
	if now-u.started < sim.Time(u.cfg.Warmup) {
		return
	}
	rec, err := u.cfg.Model.Recommend(now, u.cfg.Managed)
	if err != nil {
		u.errs++
		u.lastErr = err
		publishControllerError(u.c, now, "recommend", err)
		return
	}
	svc, err := u.c.Service(u.cfg.Service)
	if err != nil {
		u.errs++
		u.lastErr = err
		return
	}
	p99, perr := u.c.Completions().Percentile(99, now-sim.Time(u.cfg.Period), now)
	violating := perr == nil && p99 > u.cfg.SLO

	util := rec.BehindUtil
	switch {
	case violating && util >= behindUtilHigh && u.level < len(u.cfg.Ladder)-1:
		// Coordinated scale-up: more CPU plus a proportionally larger
		// pool in one action.
		oldCores := u.cfg.Ladder[u.level]
		u.level++
		newCores := u.cfg.Ladder[u.level]
		if err := u.c.SetCores(u.cfg.Service, newCores); err != nil {
			u.level--
			u.errs++
			u.lastErr = err
			return
		}
		u.hwChanges++
		u.calm = 0
		u.publishHardwareMove(now, "up", oldCores, newCores, violating, util, p99)
		u.scalePoolBy(now, rec, newCores/oldCores)
		return
	case !violating && util <= u.cfg.DownUtil && u.level > 0:
		u.calm++
		if u.calm >= u.cfg.DownAfter {
			u.calm = 0
			oldCores := u.cfg.Ladder[u.level]
			u.level--
			newCores := u.cfg.Ladder[u.level]
			if err := u.c.SetCores(u.cfg.Service, newCores); err != nil {
				u.level++
				u.errs++
				u.lastErr = err
				return
			}
			u.hwChanges++
			u.publishHardwareMove(now, "down", oldCores, newCores, violating, util, p99)
			u.scalePoolBy(now, rec, newCores/oldCores)
			return
		}
	default:
		u.calm = 0
	}
	// No hardware move this period: plain soft adaptation.
	u.softAdapt(now, rec, false)
	_ = svc
}

// publishHardwareMove records one CPU-ladder move with the decision
// inputs that triggered it.
func (u *UnifiedController) publishHardwareMove(now sim.Time, direction string, fromCores, toCores float64, violating bool, util float64, p99 time.Duration) {
	tel := u.c.Telemetry()
	if tel == nil {
		return
	}
	tel.Publish(now, "controller.hardware",
		telemetry.String("service", u.cfg.Service),
		telemetry.String("direction", direction),
		telemetry.Float("from_cores", fromCores),
		telemetry.Float("to_cores", toCores),
		telemetry.Bool("violating", violating),
		telemetry.Float("behind_util", util),
		telemetry.Dur("p99_ms", p99),
		telemetry.Dur("slo_ms", u.cfg.SLO))
}

// scalePoolBy rescales the primary managed pool proportionally to the
// capacity change, anchored on the larger of the model's recommendation
// and the current setting.
func (u *UnifiedController) scalePoolBy(now sim.Time, rec Recommendation, ratio float64) {
	res := u.cfg.Managed[0]
	perPod, err := u.c.PoolSize(res.Ref)
	if err != nil {
		u.errs++
		u.lastErr = err
		return
	}
	base := perPod
	if rec.Resource == res.Ref && rec.OptimalConcurrency > base {
		base = rec.OptimalConcurrency
	}
	target := res.Clamp(int(float64(base)*ratio + 0.5))
	if target == perPod {
		return
	}
	if err := u.c.SetPoolSize(res.Ref, target); err != nil {
		u.errs++
		u.lastErr = err
		publishControllerError(u.c, now, "apply", err)
		return
	}
	if tel := u.c.Telemetry(); tel != nil {
		tel.Publish(now, "controller.decision",
			telemetry.String("resource", res.Ref.String()),
			telemetry.String("critical", rec.CriticalService),
			telemetry.String("reason", reasonCoordinated),
			telemetry.Bool("applied", true),
			telemetry.Int("current", perPod),
			telemetry.Int("target", target),
			telemetry.Int("to", target),
			telemetry.Int("delta", target-perPod),
			telemetry.Float("ratio", ratio),
			telemetry.Int("opt", rec.OptimalConcurrency),
			telemetry.Int("pairs", rec.Pairs))
	}
	u.events = append(u.events, AdaptationEvent{
		At:              now,
		Resource:        res.Ref,
		From:            perPod,
		To:              target,
		CriticalService: rec.CriticalService,
		Threshold:       rec.Threshold,
		Pairs:           rec.Pairs,
	})
}

// softAdapt runs the shared Concurrency Adapter policy (runAdapter in
// adapter.go) without a hysteresis band — the unified controller reacts
// to every surviving recommendation since it coordinates hardware moves
// itself.
func (u *UnifiedController) softAdapt(now sim.Time, rec Recommendation, afterHWChange bool) {
	ev, applied, err := runAdapter(u.c, now, rec, u.cfg.Managed, &u.shrinkStreak, afterHWChange, 0)
	if err != nil {
		u.errs++
		u.lastErr = err
		publishControllerError(u.c, now, "apply", err)
		return
	}
	if applied {
		u.events = append(u.events, ev)
	}
}
