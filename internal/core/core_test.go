package core

import (
	"errors"
	"testing"
	"time"

	"sora/internal/cluster"
	"sora/internal/sim"
	"sora/internal/topology"
	"sora/internal/workload"
)

// cartRig deploys Sock Shop driving only the Cart service under a
// closed-loop population, with a monitor tracking Cart's thread pool.
type cartRig struct {
	k    *sim.Kernel
	c    *cluster.Cluster
	mon  *Monitor
	loop *workload.ClosedLoop
	ref  cluster.ResourceRef
}

func newCartRig(t *testing.T, seed uint64, threads, users int, cores float64) *cartRig {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg := topology.DefaultSockShop()
	cfg.CartThreads = threads
	cfg.CartCores = cores
	app := topology.SockShop(cfg)
	app.Mix = topology.CartOnlyMix(app)
	c, err := cluster.New(k, app, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.ResourceRef{Service: topology.Cart, Kind: cluster.PoolThreads}
	mon, err := NewMonitor(c, 0, []cluster.ResourceRef{ref}, c.ServiceNames())
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	loop, err := workload.NewClosedLoop(k, workload.ClosedLoopConfig{
		Target: workload.ConstantUsers(users),
		Submit: func(done func()) { c.SubmitMixWith(done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Start()
	return &cartRig{k: k, c: c, mon: mon, loop: loop, ref: ref}
}

func (r *cartRig) runFor(d time.Duration) { r.k.RunUntil(r.k.Now() + sim.Time(d)) }

func (r *cartRig) shutdown() {
	r.loop.Stop()
	r.mon.Stop()
	r.k.Run()
}

func TestMonitorSamplesConcurrencyAndUtil(t *testing.T) {
	r := newCartRig(t, 1, 10, 400, 2)
	r.runFor(10 * time.Second)
	conc, err := r.mon.Concurrency(r.ref)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Len() < 90 {
		t.Errorf("concurrency samples = %d, want ~100 at 100ms over 10s", conc.Len())
	}
	pts := conc.Window(0, r.k.Now())
	var maxQ float64
	for _, p := range pts {
		if p.V < 0 {
			t.Fatalf("negative concurrency sample %v", p)
		}
		if p.V > maxQ {
			maxQ = p.V
		}
	}
	if maxQ == 0 {
		t.Error("concurrency never rose above zero under load")
	}
	if maxQ > 10 {
		t.Errorf("concurrency %g exceeded thread pool 10", maxQ)
	}
	util := r.mon.MeanUtil(topology.Cart, 0, r.k.Now())
	if util <= 0.05 || util > 1.0 {
		t.Errorf("cart mean util = %g, want in (0.05, 1]", util)
	}
	r.shutdown()
}

func TestMonitorErrors(t *testing.T) {
	k := sim.NewKernel(2)
	app := topology.SockShop(topology.DefaultSockShop())
	c, err := cluster.New(k, app, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(nil, 0, nil, nil); err == nil {
		t.Error("nil cluster: expected error")
	}
	if _, err := NewMonitor(c, 0, []cluster.ResourceRef{{Service: "ghost", Kind: cluster.PoolThreads}}, nil); err == nil {
		t.Error("unknown service: expected error")
	}
	if _, err := NewMonitor(c, 0, nil, []string{"ghost"}); err == nil {
		t.Error("unknown util service: expected error")
	}
	mon, err := NewMonitor(c, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Concurrency(cluster.ResourceRef{Service: topology.Cart, Kind: cluster.PoolThreads}); err == nil {
		t.Error("untracked resource: expected error")
	}
	if _, err := mon.CPUUtil(topology.Cart); err == nil {
		t.Error("unmonitored service: expected error")
	}
	if err := mon.Track(cluster.ResourceRef{Service: topology.Cart, Kind: cluster.PoolThreads}); err != nil {
		t.Errorf("Track: %v", err)
	}
}

func TestCriticalServiceLocalizesCart(t *testing.T) {
	// Cart-only workload at heavy load: the critical service must be
	// cart (or its database under extreme conditions, but with a 24-core
	// cart-db it is the 2-core cart that bottlenecks).
	r := newCartRig(t, 3, 10, 900, 2)
	r.runFor(90 * time.Second)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	critical, err := scg.CriticalService(r.k.Now())
	if err != nil {
		t.Fatal(err)
	}
	if critical != topology.Cart {
		t.Errorf("critical service = %q, want cart", critical)
	}
	r.shutdown()
}

func TestPropagateDeadline(t *testing.T) {
	r := newCartRig(t, 4, 10, 600, 2)
	r.runFor(60 * time.Second)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rtt, err := scg.PropagateDeadline(r.k.Now(), topology.Cart)
	if err != nil {
		t.Fatal(err)
	}
	// Front-end PT is ~0.5ms, so the cart threshold must be SLA minus a
	// small upstream share: within (200ms, 250ms).
	if rtt <= 200*time.Millisecond || rtt >= 250*time.Millisecond {
		t.Errorf("propagated RTT = %v, want in (200ms, 250ms)", rtt)
	}
	// Deeper service: cart-db threshold must be strictly smaller.
	rttDB, err := scg.PropagateDeadline(r.k.Now(), topology.CartDB)
	if err != nil {
		t.Fatal(err)
	}
	if rttDB >= rtt {
		t.Errorf("cart-db RTT %v not below cart RTT %v", rttDB, rtt)
	}
	if _, err := scg.PropagateDeadline(r.k.Now(), topology.Payment); err == nil {
		t.Error("service never on critical path: expected error")
	}
	r.shutdown()
}

func TestPropagateDeadlineFloor(t *testing.T) {
	r := newCartRig(t, 5, 10, 600, 2)
	r.runFor(30 * time.Second)
	// An absurdly tight SLA must floor at MinThreshold, not go negative.
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rtt, err := scg.PropagateDeadline(r.k.Now(), topology.Cart)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != time.Millisecond {
		t.Errorf("floored RTT = %v, want 1ms", rtt)
	}
	r.shutdown()
}

func TestSCGCollectAndEstimate(t *testing.T) {
	// Generous thread pool and near-saturation load: concurrency roams
	// across a wide range, tracing out the goodput curve. With a tight
	// SLA, the plateau ends where spans outgrow the propagated deadline
	// (the simulated Cart's span is roughly Q milliseconds at high
	// concurrency), so the estimate must land well below the pool size.
	r := newCartRig(t, 6, 60, 800, 2)
	r.runFor(3 * time.Minute)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 60 * time.Millisecond, Window: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := scg.PropagateDeadline(r.k.Now(), topology.Cart)
	if err != nil {
		t.Fatal(err)
	}
	qs, gps, err := scg.CollectPairs(r.k.Now(), r.ref, topology.Cart, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) < 100 {
		t.Fatalf("only %d pairs collected", len(qs))
	}
	res, err := scg.Estimate(qs, gps)
	if err != nil {
		t.Fatal(err)
	}
	if res.X < 5 || res.X > 100 {
		t.Errorf("estimated optimal concurrency = %g, want in [5, 100]", res.X)
	}
	r.shutdown()
}

func TestSCGEstimateThresholdSensitive(t *testing.T) {
	// The paper's Figure 7 property: a tighter deadline moves the
	// optimal concurrency down.
	r := newCartRig(t, 61, 60, 800, 2)
	r.runFor(3 * time.Minute)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: time.Second, Window: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	estimate := func(threshold time.Duration) float64 {
		qs, gps, err := scg.CollectPairs(r.k.Now(), r.ref, topology.Cart, threshold)
		if err != nil {
			t.Fatal(err)
		}
		res, err := scg.Estimate(qs, gps)
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	tight := estimate(30 * time.Millisecond)
	loose := estimate(300 * time.Millisecond)
	if tight >= loose {
		t.Errorf("tight-threshold optimum %g not below loose-threshold optimum %g", tight, loose)
	}
	r.shutdown()
}

func TestSCGRecommendPipeline(t *testing.T) {
	r := newCartRig(t, 7, 60, 800, 2)
	r.runFor(2 * time.Minute)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond, Window: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := scg.Recommend(r.k.Now(), []ManagedResource{{Ref: r.ref, Min: 2, Max: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CriticalService != topology.Cart {
		t.Errorf("critical = %q, want cart", rec.CriticalService)
	}
	if rec.OptimalConcurrency < 2 || rec.OptimalConcurrency > 200 {
		t.Errorf("recommendation %d outside clamp", rec.OptimalConcurrency)
	}
	if rec.Threshold <= 0 {
		t.Error("SCG recommendation carries no threshold")
	}
	if rec.Pairs < 50 {
		t.Errorf("pairs = %d", rec.Pairs)
	}
	r.shutdown()
}

func TestSCTRecommendIgnoresLatency(t *testing.T) {
	r := newCartRig(t, 8, 60, 800, 2)
	r.runFor(2 * time.Minute)
	sct, err := NewSCT(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond, Window: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sct.Recommend(r.k.Now(), []ManagedResource{{Ref: r.ref, Min: 2, Max: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Threshold != 0 {
		t.Errorf("SCT recommendation has threshold %v, want 0", rec.Threshold)
	}
	if rec.OptimalConcurrency < 2 {
		t.Errorf("recommendation %d", rec.OptimalConcurrency)
	}
	r.shutdown()
}

func TestSCTIsThresholdInsensitive(t *testing.T) {
	// The latency-agnostic SCT baseline produces the same allocation no
	// matter the SLA — the defect the SCG model exists to fix.
	r := newCartRig(t, 9, 60, 800, 2)
	r.runFor(3 * time.Minute)
	managed := []ManagedResource{{Ref: r.ref, Min: 2, Max: 300}}
	recommend := func(sla time.Duration) int {
		sct, err := NewSCT(r.c, r.mon, SCGConfig{SLA: sla, Window: 3 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := sct.Recommend(r.k.Now(), managed)
		if err != nil {
			t.Fatal(err)
		}
		if rec.GoodFrac != 1 {
			t.Errorf("SCT GoodFrac = %g, want 1 (latency-agnostic)", rec.GoodFrac)
		}
		return rec.OptimalConcurrency
	}
	tight := recommend(30 * time.Millisecond)
	loose := recommend(500 * time.Millisecond)
	if tight != loose {
		t.Errorf("SCT recommendation changed with SLA: %d vs %d", tight, loose)
	}
	r.shutdown()
}

func TestSCGConstructorErrors(t *testing.T) {
	r := newCartRig(t, 10, 5, 10, 2)
	if _, err := NewSCG(nil, r.mon, SCGConfig{SLA: time.Second}); err == nil {
		t.Error("nil cluster: expected error")
	}
	if _, err := NewSCG(r.c, nil, SCGConfig{SLA: time.Second}); err == nil {
		t.Error("nil monitor: expected error")
	}
	if _, err := NewSCG(r.c, r.mon, SCGConfig{}); err == nil {
		t.Error("zero SLA: expected error")
	}
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := scg.SetSLA(-1); err == nil {
		t.Error("negative SLA: expected error")
	}
	if err := scg.SetSLA(500 * time.Millisecond); err != nil {
		t.Error(err)
	}
	if got := scg.Config().SLA; got != 500*time.Millisecond {
		t.Errorf("SLA after SetSLA = %v", got)
	}
	// Cold start: no traces yet.
	if _, err := scg.CriticalService(r.k.Now()); err == nil {
		t.Error("cold start: expected error")
	}
	r.shutdown()
}

func TestManagedResourceHelpers(t *testing.T) {
	res := ManagedResource{
		Ref: cluster.ResourceRef{Service: "home-timeline", Kind: cluster.PoolClientConns, Target: "post-storage"},
	}
	if got := res.MeasuredService(); got != "post-storage" {
		t.Errorf("client pool measured service = %q, want callee", got)
	}
	res2 := ManagedResource{Ref: cluster.ResourceRef{Service: "cart", Kind: cluster.PoolThreads}}
	if got := res2.MeasuredService(); got != "cart" {
		t.Errorf("measured service = %q, want cart", got)
	}
	res3 := ManagedResource{Ref: res2.Ref, Measured: "cart-db"}
	if got := res3.MeasuredService(); got != "cart-db" {
		t.Errorf("explicit measured = %q", got)
	}
	clamp := ManagedResource{Min: 5, Max: 50}
	for _, tt := range []struct{ in, want int }{{1, 5}, {5, 5}, {30, 30}, {50, 50}, {99, 50}} {
		if got := clamp.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	noMax := ManagedResource{}
	if got := noMax.Clamp(0); got != 1 {
		t.Errorf("Clamp(0) with no bounds = %d, want 1", got)
	}
	if got := noMax.Clamp(1000); got != 1000 {
		t.Errorf("Clamp(1000) with no max = %d", got)
	}
}

// fixedModel always recommends the same setting, for controller tests.
type fixedModel struct {
	rec  Recommendation
	err  error
	call int
}

func (f *fixedModel) Recommend(sim.Time, []ManagedResource) (Recommendation, error) {
	f.call++
	return f.rec, f.err
}

// flipScaler reports a hardware change on its first step only.
type flipScaler struct{ steps int }

func (s *flipScaler) Name() string { return "flip" }
func (s *flipScaler) Step(sim.Time) bool {
	s.steps++
	return s.steps == 1
}

func TestControllerAppliesRecommendation(t *testing.T) {
	r := newCartRig(t, 11, 5, 100, 2)
	model := &fixedModel{rec: Recommendation{
		CriticalService:    topology.Cart,
		Resource:           r.ref,
		OptimalConcurrency: 25,
		Threshold:          100 * time.Millisecond,
		Pairs:              600,
	}}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(30 * time.Second)
	ctl.Stop()
	size, err := r.c.PoolSize(r.ref)
	if err != nil {
		t.Fatal(err)
	}
	if size != 25 {
		t.Errorf("pool size = %d, want 25", size)
	}
	events := ctl.Events()
	if len(events) != 1 {
		t.Fatalf("adaptations = %d, want exactly 1 (no re-apply at same value)", len(events))
	}
	if events[0].From != 5 || events[0].To != 25 {
		t.Errorf("event = %+v", events[0])
	}
	if events[0].String() == "" {
		t.Error("empty event string")
	}
	r.shutdown()
}

func TestControllerWarmupSuppressesAdaptation(t *testing.T) {
	r := newCartRig(t, 12, 5, 100, 2)
	model := &fixedModel{rec: Recommendation{Resource: r.ref, OptimalConcurrency: 25}}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(30 * time.Second)
	ctl.Stop()
	if model.call != 0 {
		t.Errorf("model consulted %d times during warmup", model.call)
	}
	if size, _ := r.c.PoolSize(r.ref); size != 5 {
		t.Errorf("pool changed during warmup: %d", size)
	}
	r.shutdown()
}

func TestControllerHysteresis(t *testing.T) {
	r := newCartRig(t, 13, 20, 100, 2)
	// 22 is within 15% of 20: must be ignored.
	model := &fixedModel{rec: Recommendation{Resource: r.ref, OptimalConcurrency: 22}}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(20 * time.Second)
	ctl.Stop()
	if size, _ := r.c.PoolSize(r.ref); size != 20 {
		t.Errorf("hysteresis did not hold: pool = %d", size)
	}
	if len(ctl.Events()) != 0 {
		t.Errorf("events = %v", ctl.Events())
	}
	r.shutdown()
}

func TestControllerAppliesAfterHardwareChange(t *testing.T) {
	r := newCartRig(t, 14, 20, 100, 2)
	// Within hysteresis band, but the first period carries a hardware
	// change, which must force the reallocation through.
	model := &fixedModel{rec: Recommendation{Resource: r.ref, OptimalConcurrency: 22}}
	scaler := &flipScaler{}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Scaler:  scaler,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(6 * time.Second)
	ctl.Stop()
	if size, _ := r.c.PoolSize(r.ref); size != 22 {
		t.Errorf("pool = %d, want 22 applied right after hardware change", size)
	}
	if ctl.HardwareChanges() != 1 {
		t.Errorf("hw changes = %d, want 1", ctl.HardwareChanges())
	}
	r.shutdown()
}

func TestControllerRecordsModelErrors(t *testing.T) {
	r := newCartRig(t, 15, 5, 100, 2)
	model := &fixedModel{err: errForTest}
	ctl, err := NewController(r.c, ControllerConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Period:  5 * time.Second,
		Warmup:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	r.runFor(16 * time.Second)
	ctl.Stop()
	n, last := ctl.ModelErrors()
	if n == 0 || last == nil {
		t.Errorf("errors = %d, last = %v", n, last)
	}
	r.shutdown()
}

var errForTest = errors.New("model intentionally failing")

func TestControllerConstructorErrors(t *testing.T) {
	r := newCartRig(t, 16, 5, 10, 2)
	model := &fixedModel{}
	if _, err := NewController(nil, ControllerConfig{Model: model, Managed: []ManagedResource{{Ref: r.ref}}}); err == nil {
		t.Error("nil cluster: expected error")
	}
	if _, err := NewController(r.c, ControllerConfig{Managed: []ManagedResource{{Ref: r.ref}}}); err == nil {
		t.Error("nil model: expected error")
	}
	if _, err := NewController(r.c, ControllerConfig{Model: model}); err == nil {
		t.Error("no managed resources: expected error")
	}
	bad := cluster.ResourceRef{Service: "ghost", Kind: cluster.PoolThreads}
	if _, err := NewController(r.c, ControllerConfig{Model: model, Managed: []ManagedResource{{Ref: bad}}}); err == nil {
		t.Error("unknown resource: expected error")
	}
	r.shutdown()
}
