package core

import (
	"testing"
	"time"

	"sora/internal/cluster"
	"sora/internal/sim"
	"sora/internal/topology"
	"sora/internal/workload"
)

func TestUnifiedConstructorErrors(t *testing.T) {
	r := newCartRig(t, 30, 5, 10, 2)
	model := &fixedModel{}
	managed := []ManagedResource{{Ref: r.ref}}
	cases := []struct {
		name string
		cfg  UnifiedConfig
	}{
		{"nil model", UnifiedConfig{Managed: managed, Service: topology.Cart, SLO: time.Second}},
		{"no managed", UnifiedConfig{Model: model, Service: topology.Cart, SLO: time.Second}},
		{"unknown service", UnifiedConfig{Model: model, Managed: managed, Service: "ghost", SLO: time.Second}},
		{"zero SLO", UnifiedConfig{Model: model, Managed: managed, Service: topology.Cart}},
		{"bad ladder", UnifiedConfig{Model: model, Managed: managed, Service: topology.Cart, SLO: time.Second, Ladder: []float64{4, 2}}},
	}
	for _, tt := range cases {
		if _, err := NewUnified(r.c, tt.cfg); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
	if _, err := NewUnified(nil, UnifiedConfig{Model: model, Managed: managed, Service: topology.Cart, SLO: time.Second}); err == nil {
		t.Error("nil cluster: expected error")
	}
	r.shutdown()
}

func TestUnifiedCoordinatedScaleUp(t *testing.T) {
	// Overloaded 2-core Cart with a snug pool: the unified controller
	// must move cores 2->4 and grow the pool in the same period instead
	// of waiting for a fresh estimation window.
	r := newCartRig(t, 31, 10, 1600, 2)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnified(r.c, UnifiedConfig{
		Model:   scg,
		Managed: []ManagedResource{{Ref: r.ref, Min: 2, Max: 200}},
		Service: topology.Cart,
		SLO:     250 * time.Millisecond,
		Warmup:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	r.runFor(3 * time.Minute)
	u.Stop()
	svc, _ := r.c.Service(topology.Cart)
	if svc.Cores() != 4 {
		t.Errorf("cores = %g, want scaled to 4", svc.Cores())
	}
	if u.HardwareChanges() == 0 {
		t.Error("no hardware changes recorded")
	}
	size, _ := r.c.PoolSize(r.ref)
	if size <= 10 {
		t.Errorf("pool = %d, want grown beyond initial 10 alongside the scale-up", size)
	}
	r.shutdown()
}

func TestUnifiedScalesDownWhenCalm(t *testing.T) {
	r := newCartRig(t, 32, 40, 60, 4) // idle 4-core Cart with a big pool
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnified(r.c, UnifiedConfig{
		Model:   scg,
		Managed: []ManagedResource{{Ref: r.ref, Min: 2, Max: 200}},
		Service: topology.Cart,
		SLO:     250 * time.Millisecond,
		Warmup:  20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	r.runFor(4 * time.Minute)
	u.Stop()
	svc, _ := r.c.Service(topology.Cart)
	if svc.Cores() != 2 {
		t.Errorf("cores = %g, want stepped down to 2 when idle", svc.Cores())
	}
	r.shutdown()
}

func TestUnifiedEventsAndErrors(t *testing.T) {
	r := newCartRig(t, 33, 5, 100, 2)
	model := &fixedModel{err: errForTest}
	u, err := NewUnified(r.c, UnifiedConfig{
		Model:   model,
		Managed: []ManagedResource{{Ref: r.ref}},
		Service: topology.Cart,
		SLO:     time.Second,
		Warmup:  time.Second,
		Period:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	r.runFor(20 * time.Second)
	u.Stop()
	n, last := u.ModelErrors()
	if n == 0 || last == nil {
		t.Errorf("errors = %d, last = %v", n, last)
	}
	if len(u.Events()) != 0 {
		t.Errorf("events = %v, want none", u.Events())
	}
	r.shutdown()
}

func TestAutoIntervalPrefersInformativeGranularity(t *testing.T) {
	// A 3-minute bursty run at 10ms monitor sampling: the auto selector
	// must pick a workable interval (one that produces consistent
	// estimates on both window halves) and return scores for every
	// candidate.
	k := sim.NewKernel(44)
	cfg := topology.DefaultSockShop()
	cfg.CartThreads = 60
	cfg.CartCores = 2
	app := topology.SockShop(cfg)
	c, err := cluster.New(k, app, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMix(topology.CartOnlyMix(app)); err != nil {
		t.Fatal(err)
	}
	ref := cluster.ResourceRef{Service: topology.Cart, Kind: cluster.PoolThreads}
	mon, err := NewMonitor(c, 10*time.Millisecond, []cluster.ResourceRef{ref}, c.ServiceNames())
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	dur := 3 * time.Minute
	loop, err := workload.NewClosedLoop(k, workload.ClosedLoopConfig{
		Target: workload.TraceUsers(workload.LargeVariationTrace(), dur, 900),
		Submit: func(done func()) { c.SubmitMixWith(done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Start()
	k.RunUntil(sim.Time(dur))
	loop.Stop()
	mon.Stop()
	k.Run()

	scg, err := NewSCG(c, mon, SCGConfig{SLA: 250 * time.Millisecond, Window: dur})
	if err != nil {
		t.Fatal(err)
	}
	best, scores, err := scg.AutoInterval(sim.Time(dur), ref, topology.Cart, 30*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(DefaultIntervalCandidates()) {
		t.Fatalf("scores for %d candidates, want %d", len(scores), len(DefaultIntervalCandidates()))
	}
	if best < 10*time.Millisecond || best > 500*time.Millisecond {
		t.Errorf("best interval %v outside candidate range", best)
	}
	// The winner's disagreement must be the minimum of all finite scores.
	for _, sc := range scores {
		if sc.Interval == best {
			for _, other := range scores {
				if other.Disagreement < sc.Disagreement {
					t.Errorf("winner %v (%.3f) beaten by %v (%.3f)",
						best, sc.Disagreement, other.Interval, other.Disagreement)
				}
			}
		}
	}
}

func TestAutoIntervalErrors(t *testing.T) {
	r := newCartRig(t, 45, 5, 10, 2)
	scg, err := NewSCG(r.c, r.mon, SCGConfig{SLA: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Unknown resource.
	if _, _, err := scg.AutoInterval(r.k.Now(), cluster.ResourceRef{Service: "ghost", Kind: cluster.PoolThreads}, topology.Cart, time.Millisecond, nil); err == nil {
		t.Error("unknown resource: expected error")
	}
	// Cold start: no samples at all.
	if _, _, err := scg.AutoInterval(r.k.Now(), r.ref, topology.Cart, time.Millisecond, nil); err == nil {
		t.Error("cold start: expected error")
	}
	r.shutdown()
}
