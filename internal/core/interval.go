package core

import (
	"fmt"
	"math"
	"time"

	"sora/internal/cluster"
	"sora/internal/metrics"
	"sora/internal/sim"
)

// This file implements the paper's second piece of stated future work
// (section 3.3): "An automatic way to choose a proper time interval that
// minimizes the MAPE for all types of microservices is our future
// research."
//
// Without offline ground truth, estimation error cannot be measured
// directly online; a practical proxy is split-half stability: bucket the
// window's raw samples at a candidate interval, estimate the optimal
// concurrency independently on each half of the window, and score the
// candidate by the relative disagreement between the two halves (plus a
// penalty when either half fails to produce an estimate). A too-short
// interval yields noisy per-bucket goodput (halves disagree); a too-long
// interval yields too few, over-averaged points (estimates blur or
// fail). The interval with the most self-consistent estimates wins —
// the same trade-off Table 1's MAPE column surfaces with ground truth.

// DefaultIntervalCandidates are the sampling intervals Table 1 evaluates.
func DefaultIntervalCandidates() []time.Duration {
	return []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		500 * time.Millisecond,
	}
}

// IntervalScore reports how one candidate interval fared.
type IntervalScore struct {
	Interval time.Duration
	// Disagreement is |estA - estB| / mean(estA, estB) between the two
	// window halves; math.Inf(1) when either half failed.
	Disagreement float64
	EstimateA    float64
	EstimateB    float64
}

// AutoInterval selects the sampling interval whose split-half estimates
// agree best for the given resource, re-bucketing the monitor's raw
// series (which must have been sampled at least as finely as the finest
// candidate). It returns the winning interval and the per-candidate
// scores, or an error when no candidate produced two estimates.
func (m *SCGModel) AutoInterval(now sim.Time, ref cluster.ResourceRef, measured string, threshold time.Duration, candidates []time.Duration) (time.Duration, []IntervalScore, error) {
	if len(candidates) == 0 {
		candidates = DefaultIntervalCandidates()
	}
	conc, err := m.mon.Concurrency(ref)
	if err != nil {
		return 0, nil, err
	}
	svc, err := m.c.Service(measured)
	if err != nil {
		return 0, nil, err
	}
	since := now - m.cfg.Window
	mid := since + (now-since)/2

	estimateHalf := func(interval time.Duration, lo, hi sim.Time) (float64, error) {
		qs, gps := metrics.ConcurrencyGoodputPairs(conc, svc.SpanLog(), lo, hi, interval, threshold)
		// Halves hold half the samples: relax the pair floor accordingly.
		if len(qs) < m.cfg.MinPairs/2 {
			return 0, fmt.Errorf("core: %d pairs in half-window at %v", len(qs), interval)
		}
		bx, by, err := binPairs(qs, gps, minBinSamples)
		if err != nil {
			return 0, err
		}
		res, err := kneePlateau(bx, by, m.cfg.PlateauTolerance)
		if err != nil {
			return 0, err
		}
		return res, nil
	}

	scores := make([]IntervalScore, 0, len(candidates))
	best := time.Duration(0)
	bestScore := math.Inf(1)
	for _, interval := range candidates {
		sc := IntervalScore{Interval: interval, Disagreement: math.Inf(1)}
		a, errA := estimateHalf(interval, since, mid)
		b, errB := estimateHalf(interval, mid, now)
		sc.EstimateA, sc.EstimateB = a, b
		if errA == nil && errB == nil && a+b > 0 {
			sc.Disagreement = math.Abs(a-b) / ((a + b) / 2)
		}
		scores = append(scores, sc)
		if sc.Disagreement < bestScore {
			best, bestScore = interval, sc.Disagreement
		}
	}
	if math.IsInf(bestScore, 1) {
		return 0, scores, fmt.Errorf("core: no candidate interval produced estimates on both window halves")
	}
	return best, scores, nil
}

// kneePlateau is the shared binned plateau-end estimate on pre-binned
// points, returning the optimal concurrency.
func kneePlateau(bx, by []float64, tolerance float64) (float64, error) {
	smooth := movingAvg3(by)
	peakIdx := 0
	for i, v := range smooth {
		if v > smooth[peakIdx] {
			peakIdx = i
		}
	}
	peak := smooth[peakIdx]
	if peak <= 0 {
		return 0, fmt.Errorf("core: degenerate goodput curve")
	}
	if tolerance <= 0 {
		tolerance = defaultPlateauTolerance
	}
	end := peakIdx
	for i := peakIdx + 1; i < len(smooth); i++ {
		if smooth[i] < (1-tolerance)*peak {
			break
		}
		end = i
	}
	return bx[end], nil
}

// movingAvg3 is a centered 3-point moving average (edge-clamped).
func movingAvg3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
