package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sora/internal/cluster"
	"sora/internal/knee"
	"sora/internal/metrics"
	"sora/internal/sim"
	"sora/internal/stats"
	"sora/internal/trace"
)

// SCGConfig configures the Scatter-Concurrency-Goodput model.
type SCGConfig struct {
	// SLA is the end-to-end response-time objective deadlines are
	// propagated from (required).
	SLA time.Duration
	// Window is the metrics-collection window; zero selects 60 s (the
	// paper's choice: 600 samples at 100 ms cover the knee while staying
	// agile).
	Window time.Duration
	// SampleInterval is the concurrency/goodput sampling granularity;
	// zero selects DefaultSampleInterval (100 ms).
	SampleInterval time.Duration
	// UtilizationFloor screens critical-service candidates: services
	// below this mean CPU utilization are not considered bottlenecks.
	// Zero selects 0.5.
	UtilizationFloor float64
	// MinPairs is the minimum number of <Q, GP> samples required before
	// an estimate is attempted; zero selects 50.
	MinPairs int
	// Knee configures the Kneedle estimator (degree range, sensitivity).
	Knee knee.AutoOptions
	// MinThreshold floors the propagated per-service deadline so that a
	// slow upstream cannot drive it to zero; zero selects 1 ms.
	MinThreshold time.Duration
	// PlateauTolerance is how far below peak goodput the plateau may sag
	// before the optimal concurrency is declared (phase 4); zero selects
	// 0.08. Tighter values bias the estimate toward the peak itself.
	PlateauTolerance float64
}

func (cfg *SCGConfig) fillDefaults() {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	if cfg.UtilizationFloor <= 0 {
		cfg.UtilizationFloor = 0.5
	}
	if cfg.MinPairs <= 0 {
		cfg.MinPairs = 50
	}
	if cfg.MinThreshold <= 0 {
		cfg.MinThreshold = time.Millisecond
	}
	if cfg.PlateauTolerance <= 0 {
		cfg.PlateauTolerance = defaultPlateauTolerance
	}
}

// SCGModel is the paper's Scatter-Concurrency-Goodput model: it estimates
// the optimal concurrency setting of the critical microservice from the
// correlation of its fine-grained goodput (against a propagated deadline)
// and request-processing concurrency.
type SCGModel struct {
	cfg SCGConfig
	c   *cluster.Cluster
	mon *Monitor
}

// NewSCG returns an SCG model reading traces from the cluster's warehouse
// and concurrency series from the monitor.
func NewSCG(c *cluster.Cluster, mon *Monitor, cfg SCGConfig) (*SCGModel, error) {
	if c == nil || mon == nil {
		return nil, fmt.Errorf("core: SCG needs a cluster and a monitor")
	}
	if cfg.SLA <= 0 {
		return nil, fmt.Errorf("core: SCG needs a positive SLA, got %v", cfg.SLA)
	}
	cfg.fillDefaults()
	return &SCGModel{cfg: cfg, c: c, mon: mon}, nil
}

// Config returns the model's effective configuration (defaults filled).
func (m *SCGModel) Config() SCGConfig { return m.cfg }

// SetSLA changes the end-to-end deadline at runtime (SLA requirements of
// critical services may change over time — section 5.2's discussion).
func (m *SCGModel) SetSLA(sla time.Duration) error {
	if sla <= 0 {
		return fmt.Errorf("core: SLA must be positive, got %v", sla)
	}
	m.cfg.SLA = sla
	return nil
}

// CriticalService identifies the critical service over the trailing
// window (phase 1 of the SCG workflow): services are screened by CPU
// utilization, then ranked by the Pearson correlation of their per-trace
// processing time with the end-to-end response time; the highest
// correlated candidate wins. If no service passes the utilization screen
// the correlation ranking alone decides, mirroring the paper's
// observation that the two steps agree most of the time.
func (m *SCGModel) CriticalService(now sim.Time) (string, error) {
	since := now - m.cfg.Window
	traces := m.c.Warehouse().Window(since, now)
	if len(traces) < 2 {
		return "", fmt.Errorf("core: only %d traces in window, need >= 2", len(traces))
	}

	// Assemble aligned per-trace samples: end-to-end RT and per-service
	// processing time (0 when a trace does not visit a service).
	type svcSamples struct {
		pt      []float64
		visited int
	}
	perSvc := make(map[string]*svcSamples)
	rts := make([]float64, 0, len(traces))
	for ti, tr := range traces {
		rts = append(rts, float64(tr.ResponseTime())/float64(time.Millisecond))
		tr.Root.Walk(func(s *trace.Span) {
			ss, ok := perSvc[s.Service]
			if !ok {
				ss = &svcSamples{pt: make([]float64, len(traces))}
				perSvc[s.Service] = ss
			}
			ss.pt[ti] += float64(s.ProcessingTime()) / float64(time.Millisecond)
			ss.visited++
		})
		_ = ti
	}

	type candidate struct {
		name string
		pcc  float64
		util float64
	}
	var candidates []candidate
	for name, ss := range perSvc {
		if ss.visited < 2 {
			continue
		}
		pcc, err := stats.Pearson(ss.pt, rts)
		if err != nil {
			continue // constant processing time: carries no signal
		}
		util := m.mon.MeanUtil(name, since, now)
		candidates = append(candidates, candidate{name: name, pcc: pcc, util: util})
	}
	// perSvc is a map, so the collection order above is nondeterministic;
	// sort by name so the strict-> argmax below breaks PCC ties toward
	// the lexicographically smallest service on every run.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].name < candidates[j].name })
	if len(candidates) == 0 {
		return "", fmt.Errorf("core: no service produced a usable correlation over the window")
	}

	best := ""
	bestPCC := math.Inf(-1)
	// First pass: only services past the utilization screen.
	for _, c := range candidates {
		if c.util >= m.cfg.UtilizationFloor && c.pcc > bestPCC {
			best, bestPCC = c.name, c.pcc
		}
	}
	if best != "" {
		return best, nil
	}
	// Fallback: correlation alone.
	for _, c := range candidates {
		if c.pcc > bestPCC {
			best, bestPCC = c.name, c.pcc
		}
	}
	return best, nil
}

// PropagateDeadline computes the response-time threshold of the given
// service (phase 2): RTT_s = SLA - Σ_{k upstream of s} PT_k, averaged
// over the traces in the window whose critical path passes through s
// (Eq. 3 of the paper). The result is floored at MinThreshold.
func (m *SCGModel) PropagateDeadline(now sim.Time, service string) (time.Duration, error) {
	since := now - m.cfg.Window
	traces := m.c.Warehouse().Window(since, now)
	var sum time.Duration
	n := 0
	for _, tr := range traces {
		upstream, ok := tr.UpstreamProcessing(service)
		if !ok {
			continue
		}
		sum += upstream
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("core: service %q never on a critical path in the window", service)
	}
	threshold := m.cfg.SLA - sum/time.Duration(n)
	if threshold < m.cfg.MinThreshold {
		threshold = m.cfg.MinThreshold
	}
	return threshold, nil
}

// CollectPairs builds the <Q_n, GP_n> scatter samples for a soft resource
// (phase 3): the tracked concurrency series is aligned at SampleInterval
// buckets with the goodput of the measured service's span completions
// against the propagated threshold.
func (m *SCGModel) CollectPairs(now sim.Time, ref cluster.ResourceRef, measured string, threshold time.Duration) (qs, gps []float64, err error) {
	conc, err := m.mon.Concurrency(ref)
	if err != nil {
		return nil, nil, err
	}
	svc, err := m.c.Service(measured)
	if err != nil {
		return nil, nil, err
	}
	since := now - m.cfg.Window
	qs, gps = metrics.ConcurrencyGoodputPairs(conc, svc.SpanLog(), since, now, m.cfg.SampleInterval, threshold)
	return qs, gps, nil
}

// Estimate runs phase 4 on collected pairs. Samples are binned per
// integer concurrency level (sparse bins dropped), the binned means are
// smoothed with a short moving average, and the optimal concurrency is
// the right edge of the goodput plateau — the largest concurrency still
// sustaining near-peak goodput before the decline that deadline misses
// and multithreading overhead cause.
//
// On clean rising-then-falling main-sequence curves this coincides with
// the Kneedle knee at the curve maximum; on the plateau-shaped curves
// closed-loop demand produces it avoids two failure modes of raw
// polynomial-Kneedle estimation: mistaking demand saturation for the
// resource optimum, and Runge oscillation of a high-degree fit at the
// sparsely sampled high-concurrency end.
func (m *SCGModel) Estimate(qs, gps []float64) (knee.Result, error) {
	if len(qs) < m.cfg.MinPairs {
		return knee.Result{}, fmt.Errorf("core: %d pairs, need >= %d", len(qs), m.cfg.MinPairs)
	}
	return EstimateOptimal(qs, gps, m.cfg.PlateauTolerance)
}

// EstimateOptimal is the standalone form of the SCG estimation phase for
// callers outside a live model (offline analysis, the Table 1 harness):
// bin, smooth, plateau-end.
func EstimateOptimal(qs, gps []float64, tolerance float64) (knee.Result, error) {
	bx, by, err := binPairs(qs, gps, minBinSamples)
	if err != nil {
		return knee.Result{}, err
	}
	if tolerance <= 0 {
		tolerance = defaultPlateauTolerance
	}
	smooth := stats.MovingAverage(by, 3)
	return knee.FindPlateauEnd(bx, smooth, knee.PlateauOptions{Tolerance: tolerance})
}

// minBinSamples is the minimum sample count for a concurrency bin to
// participate in estimation; sparser bins are statistical noise.
const minBinSamples = 2

// defaultPlateauTolerance is how far below peak goodput the plateau may
// sag before it is considered over.
const defaultPlateauTolerance = 0.08

// binPairs aggregates scatter samples into per-integer-concurrency mean
// goodput, dropping bins with fewer than minCount samples.
func binPairs(qs, gps []float64, minCount int) (bx, by []float64, err error) {
	if len(qs) != len(gps) {
		return nil, nil, fmt.Errorf("core: pair lengths differ: %d vs %d", len(qs), len(gps))
	}
	sums := make(map[int]float64)
	counts := make(map[int]int)
	maxBin := 0
	for i, q := range qs {
		b := int(q + 0.5)
		if b < 0 {
			continue
		}
		sums[b] += gps[i]
		counts[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	for b := 0; b <= maxBin; b++ {
		if counts[b] < minCount {
			continue
		}
		bx = append(bx, float64(b))
		by = append(by, sums[b]/float64(counts[b]))
	}
	if len(bx) < 5 {
		return nil, nil, fmt.Errorf("core: only %d usable concurrency bins", len(bx))
	}
	return bx, by, nil
}

// Recommendation is the output of a full model pipeline run.
type Recommendation struct {
	// CriticalService is the localized critical microservice.
	CriticalService string
	// Resource is the soft-resource knob that controls it.
	Resource cluster.ResourceRef
	// Threshold is the propagated per-service deadline the goodput was
	// measured against (zero for the latency-agnostic SCT baseline).
	Threshold time.Duration
	// OptimalConcurrency is the recommended setting.
	OptimalConcurrency int
	// Knee carries the raw estimator output.
	Knee knee.Result
	// Pairs is the number of scatter samples used.
	Pairs int
	// MaxQWindow is the highest concurrency observed within the model
	// window — the edge of the scatter's x range. A knee at this edge
	// means the curve was truncated by the current allocation or by
	// demand, not confirmed by declining goodput beyond it.
	MaxQWindow float64
	// MaxQRetention is the highest concurrency observed over the
	// monitor's full retained history (several windows), used as a
	// shrink floor so a quiet window cannot collapse the allocation
	// below recently demonstrated demand.
	MaxQRetention float64
	// GoodFrac is the fraction of the measured service's completions
	// within the threshold over the window (1.0 for the latency-agnostic
	// SCT baseline). Low values under a saturated pool signal that the
	// current allocation cannot meet the deadline.
	GoodFrac float64
	// BehindUtil is the utilization of the capacity behind the pool: the
	// maximum mean CPU utilization among the measured service and its
	// direct downstream callees over the window. Near 1.0 it means more
	// concurrency cannot buy more useful work — the pool should not grow
	// (and shrinking reduces multithreading thrash at the bottleneck).
	BehindUtil float64
}

// ManagedResource declares one adaptable soft resource: the knob
// (ResourceRef) and the service whose concurrency/goodput the model
// correlates. For server-side pools the two coincide; for client-side
// connection pools the knob lives at the caller while the measured
// service is the callee (Home-Timeline's pool vs Post Storage's load).
type ManagedResource struct {
	Ref cluster.ResourceRef
	// Measured is the service whose spans and concurrency drive the
	// model; empty defaults to Ref.Service.
	Measured string
	// Min and Max clamp recommendations; zero Max means no upper clamp,
	// Min is floored at 1.
	Min, Max int
}

// MeasuredService returns the service the model observes for this
// resource.
func (r ManagedResource) MeasuredService() string {
	if r.Measured != "" {
		return r.Measured
	}
	if r.Ref.Kind == cluster.PoolClientConns {
		return r.Ref.Target
	}
	return r.Ref.Service
}

// Clamp bounds a raw recommendation.
func (r ManagedResource) Clamp(n int) int {
	min := r.Min
	if min < 1 {
		min = 1
	}
	if n < min {
		n = min
	}
	if r.Max > 0 && n > r.Max {
		n = r.Max
	}
	return n
}

// Recommend runs the full SCG pipeline for the managed resource whose
// measured service is the current critical service. If none of the
// managed resources corresponds to the critical service, the resource
// whose measured service has the highest CPU utilization is adapted
// instead (some critical services, e.g. a database, are only controllable
// through an upstream pool).
func (m *SCGModel) Recommend(now sim.Time, managed []ManagedResource) (Recommendation, error) {
	if len(managed) == 0 {
		return Recommendation{}, fmt.Errorf("core: no managed resources")
	}
	critical, err := m.CriticalService(now)
	if err != nil {
		return Recommendation{}, err
	}
	res := m.pickResource(critical, managed, now)
	threshold, err := m.PropagateDeadline(now, res.MeasuredService())
	if err != nil {
		// The measured service may sit off the critical path this window
		// (e.g. the knob's callee while the caller is critical): fall
		// back to the critical service's own threshold.
		threshold, err = m.PropagateDeadline(now, critical)
		if err != nil {
			return Recommendation{}, err
		}
	}
	qs, gps, err := m.CollectPairs(now, res.Ref, res.MeasuredService(), threshold)
	if err != nil {
		return Recommendation{}, err
	}
	maxWin, maxRet := m.observedConcurrency(now, res.Ref)
	kr, err := m.Estimate(qs, gps)
	if err != nil {
		// Degenerate scatter: a pool pinned at its limit for the whole
		// window produces a single concurrency bin, so no curve exists.
		// That is itself a signal — the paper's "insufficient concurrency
		// blurs the knee" case — so surface a fallback recommendation at
		// the observed edge and let the adapter's exploration rule act,
		// instead of stalling the control loop with an error.
		if len(qs) < m.cfg.MinPairs || maxWin <= 0 {
			return Recommendation{}, err
		}
		kr = knee.Result{X: maxWin, Fallback: true}
	}
	opt := res.Clamp(int(math.Round(kr.X)))
	return Recommendation{
		CriticalService:    critical,
		Resource:           res.Ref,
		Threshold:          threshold,
		OptimalConcurrency: opt,
		Knee:               kr,
		Pairs:              len(qs),
		MaxQWindow:         maxWin,
		MaxQRetention:      maxRet,
		GoodFrac:           m.goodFraction(now, res.MeasuredService(), threshold),
		BehindUtil:         m.behindUtil(now, res.MeasuredService()),
	}, nil
}

// behindUtil returns the highest mean utilization among the measured
// service and the downstream services its spans called within the window.
func (m *SCGModel) behindUtil(now sim.Time, measured string) float64 {
	since := now - m.cfg.Window
	best := m.mon.MeanUtil(measured, since, now)
	children := make(map[string]bool)
	for _, tr := range m.c.Warehouse().Window(since, now) {
		tr.Root.Walk(func(s *trace.Span) {
			if s.Service != measured {
				return
			}
			for _, c := range s.Children {
				children[c.Service] = true
			}
		})
	}
	for child := range children {
		if u := m.mon.MeanUtil(child, since, now); u > best {
			best = u
		}
	}
	return best
}

// goodFraction returns the share of the measured service's completions
// meeting the threshold over the model window (1.0 when no completions).
// The span log is degradation-aware: visits the resilience layer
// completed with a degraded response are flagged at record time and
// never count as good, so under fault injection the SCG optimizer sees
// degraded service for what it is rather than mistaking fast fallback
// responses for healthy goodput.
func (m *SCGModel) goodFraction(now sim.Time, service string, threshold time.Duration) float64 {
	svc, err := m.c.Service(service)
	if err != nil {
		return 1
	}
	good, bad := svc.SpanLog().Counts(now-m.cfg.Window, now, threshold)
	if good+bad == 0 {
		return 1
	}
	return float64(good) / float64(good+bad)
}

// observedConcurrency returns the highest sampled concurrency of the
// resource over the model window and over the monitor's full retention.
func (m *SCGModel) observedConcurrency(now sim.Time, ref cluster.ResourceRef) (window, retention float64) {
	series, err := m.mon.Concurrency(ref)
	if err != nil {
		return 0, 0
	}
	since := now - m.cfg.Window
	for _, p := range series.Window(0, now) {
		if p.V > retention {
			retention = p.V
		}
		if p.T >= since && p.V > window {
			window = p.V
		}
	}
	return window, retention
}

// pickResource maps the critical service onto a managed resource.
func (m *SCGModel) pickResource(critical string, managed []ManagedResource, now sim.Time) ManagedResource {
	for _, res := range managed {
		if res.MeasuredService() == critical || res.Ref.Service == critical {
			return res
		}
	}
	// No direct match: adapt the managed resource with the most loaded
	// measured service.
	best := managed[0]
	bestUtil := -1.0
	since := now - m.cfg.Window
	for _, res := range managed {
		u := m.mon.MeanUtil(res.MeasuredService(), since, now)
		if u > bestUtil {
			best, bestUtil = res, u
		}
	}
	return best
}
