package core

import (
	"fmt"
	"time"

	"sora/internal/cluster"
	"sora/internal/sim"
)

// HardwareScaler is the hardware-only autoscaler the Reallocation Module
// wraps (FIRM, Kubernetes HPA/VPA, or nothing). Implementations adjust
// CPU limits or replica counts through the cluster's reconfiguration API.
type HardwareScaler interface {
	// Name identifies the scaler in logs and experiment output.
	Name() string
	// Step runs one control decision at the current virtual time and
	// reports whether the hardware allocation changed.
	Step(now sim.Time) bool
}

// AdaptationEvent records one soft-resource reallocation performed by the
// Concurrency Adapter.
type AdaptationEvent struct {
	At              sim.Time
	Resource        cluster.ResourceRef
	From, To        int
	CriticalService string
	Threshold       time.Duration
	Pairs           int
}

// String formats the event for experiment logs.
func (e AdaptationEvent) String() string {
	return fmt.Sprintf("t=%v %v: %d -> %d (critical=%s, rtt=%s, pairs=%d)",
		e.At, e.Resource, e.From, e.To, e.CriticalService, fmtThreshold(e.Threshold), e.Pairs)
}

// ControllerConfig configures the Sora controller.
type ControllerConfig struct {
	// Model is the concurrency model driving adaptation (SCG for Sora,
	// SCT for the ConScale baseline). Required.
	Model Model
	// Scaler is the wrapped hardware-only autoscaler; nil runs
	// soft-resource adaptation alone.
	Scaler HardwareScaler
	// Managed lists the adaptable soft resources. Required (non-empty).
	Managed []ManagedResource
	// Period is the control period; zero selects 15 s (the Kubernetes
	// HPA default the paper cites).
	Period time.Duration
	// Warmup suppresses adaptations until enough metric history exists;
	// zero selects one model window (60 s).
	Warmup time.Duration
	// Hysteresis suppresses reallocations smaller than this fraction of
	// the current setting to avoid thrashing on estimation noise; zero
	// selects 0.15 (a recommendation within ±15% of the current value is
	// ignored). Negative disables hysteresis entirely.
	Hysteresis float64
}

// DefaultControlPeriod matches the Kubernetes HPA control loop the paper
// configures its autoscalers with.
const DefaultControlPeriod = 15 * time.Second

// Controller is the Sora framework's Reallocation Module: each control
// period it steps the hardware autoscaler, queries the concurrency model
// and applies the recommended soft-resource setting through the
// Concurrency Adapter. Immediately after a hardware change it re-queries
// eagerly, because scaling invalidates the previous optimum (the paper's
// core observation).
type Controller struct {
	c   *cluster.Cluster
	cfg ControllerConfig

	ticker  *sim.Ticker
	running bool
	started sim.Time

	events       []AdaptationEvent
	hwChanges    int
	errs         int
	lastErr      error
	shrinkStreak int
}

// shrinkConfirm is how many consecutive control periods must recommend a
// shrink before one is applied. Growth is applied immediately (latency
// is at stake); shrinking only saves resources, so it can afford
// debouncing against estimation noise — without it, the adapter
// oscillates between a noisy plateau-end and the exploration rule.
const shrinkConfirm = 2

// NewController wires a controller to the cluster. Call Start to begin
// the control loop.
func NewController(c *cluster.Cluster, cfg ControllerConfig) (*Controller, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: controller needs a model")
	}
	if len(cfg.Managed) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one managed resource")
	}
	for _, res := range cfg.Managed {
		if _, err := c.PoolSize(res.Ref); err != nil {
			return nil, fmt.Errorf("core: managed resource %v: %w", res.Ref, err)
		}
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultControlPeriod
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 60 * time.Second
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.15
	}
	return &Controller{c: c, cfg: cfg}, nil
}

// Start begins the control loop. Idempotent.
func (ctl *Controller) Start() {
	if ctl.running {
		return
	}
	ctl.running = true
	ctl.started = ctl.c.Kernel().Now()
	ctl.ticker = ctl.c.Kernel().Every(ctl.cfg.Period, ctl.step)
}

// Stop halts the control loop.
func (ctl *Controller) Stop() {
	if !ctl.running {
		return
	}
	ctl.running = false
	ctl.ticker.Stop()
}

// Events returns the soft-resource adaptations applied so far.
func (ctl *Controller) Events() []AdaptationEvent {
	out := make([]AdaptationEvent, len(ctl.events))
	copy(out, ctl.events)
	return out
}

// HardwareChanges returns how many control periods changed hardware.
func (ctl *Controller) HardwareChanges() int { return ctl.hwChanges }

// ModelErrors returns the count of control periods in which the model
// could not produce a recommendation (cold start, quiet window), along
// with the most recent error.
func (ctl *Controller) ModelErrors() (int, error) { return ctl.errs, ctl.lastErr }

func (ctl *Controller) step() {
	now := ctl.c.Kernel().Now()
	hwChanged := false
	if ctl.cfg.Scaler != nil {
		hwChanged = ctl.cfg.Scaler.Step(now)
		if hwChanged {
			ctl.hwChanges++
		}
	}
	if now-ctl.started < sim.Time(ctl.cfg.Warmup) {
		return
	}
	ctl.adapt(now, hwChanged)
}

// exploreFactor is the step by which the adapter grows a pool whose
// concurrency-goodput curve was truncated by the current allocation
// (section 3.2: "we gradually increase the allocation to find a new
// optimal value").
const exploreFactor = 1.5

// shrinkFloorFraction guards against collapsing a pool during a quiet
// window: the adapter never shrinks below this fraction of the peak
// concurrency demonstrated over the monitor's retained history.
const shrinkFloorFraction = 0.75

// behindUtilHigh is the utilization of the capacity behind a pool above
// which additional concurrency cannot produce useful work.
const behindUtilHigh = 0.92

// probeDownFactor is the multiplicative step for downward exploration
// when the capacity behind a saturated pool is itself the bottleneck
// (extra concurrency only adds multithreading thrash there).
const probeDownFactor = 0.75

// adapt queries the model and applies its recommendation through the
// Concurrency Adapter policy (runAdapter in adapter.go, shared with the
// unified controller). All reasoning happens in *total* concurrency
// units (the model observes totals across pods); the applied setting is
// divided by the owning service's replica count, since pool knobs are
// per pod (Tomcat/JDBC/ClientPool style).
//
//   - If the knee sits at (or beyond) the edge of the observable range —
//     a fallback result or a recommendation close to the current limit —
//     the curve is truncated and the true optimum is invisible. Under
//     pressure (pool pinned or deadlines missed) the adapter explores:
//     upward when the capacity behind the pool still has headroom,
//     downward when that capacity is saturated (more concurrency only
//     thrashes the bottleneck; hardware relief is the autoscaler's job).
//   - Shrinks are floored at shrinkFloorFraction of the peak concurrency
//     seen over the retained history, so a temporarily light window
//     cannot starve the next burst, and are debounced over consecutive
//     periods.
//   - Interior knees (confirmed by samples beyond them) are applied
//     directly.
func (ctl *Controller) adapt(now sim.Time, afterHWChange bool) {
	rec, err := ctl.cfg.Model.Recommend(now, ctl.cfg.Managed)
	if err != nil {
		ctl.errs++
		ctl.lastErr = err
		publishControllerError(ctl.c, now, "recommend", err)
		return
	}
	ev, applied, err := runAdapter(ctl.c, now, rec, ctl.cfg.Managed, &ctl.shrinkStreak, afterHWChange, ctl.cfg.Hysteresis)
	if err != nil {
		ctl.errs++
		ctl.lastErr = err
		publishControllerError(ctl.c, now, "apply", err)
		return
	}
	if applied {
		ctl.events = append(ctl.events, ev)
	}
}
