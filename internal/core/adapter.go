package core

import (
	"sora/internal/cluster"
	"sora/internal/sim"
	"sora/internal/telemetry"
)

// This file holds the Concurrency Adapter policy shared by the
// independent Controller and the UnifiedController, plus the decision
// audit it publishes: every evaluation emits exactly one
// controller.decision telemetry event carrying the model's full inputs
// (knee location, sampled concurrency ranges, goodput fraction,
// behind-pool utilization) and the chosen outcome, whether or not a
// reconfiguration was applied.

// Decision reason strings recorded in controller.decision events. The
// "hold-*" reasons explain why an evaluation applied nothing; the rest
// name the policy branch that produced the applied target.
const (
	reasonApplyKnee    = "apply-knee"          // interior knee applied directly
	reasonProbeDown    = "probe-down"          // saturated behind-pool capacity: probe downward
	reasonExploreUp    = "explore-up"          // truncated curve with headroom: grow
	reasonGrowUnder    = "grow-underallocated" // pinned pool, missed deadlines: grow
	reasonShrinkFloor  = "shrink-floor"        // shrink floored at demonstrated demand
	reasonHoldDebounce = "hold-debounce"       // shrink awaiting consecutive confirmation
	reasonHoldSteady   = "hold-steady"         // clamped target equals current setting
	reasonHoldHyst     = "hold-hysteresis"     // nudge within the hysteresis band
	reasonHoldPerPod   = "hold-per-pod"        // per-pod rounding yields the current size
	reasonCoordinated  = "coordinated-rescale" // unified controller's joint hardware+pool move
)

// runAdapter executes one Concurrency Adapter policy evaluation against
// the cluster: it turns the model's recommendation into a total-
// concurrency target (see the policy comment on Controller.adapt),
// debounces shrinks through shrinkStreak, clamps to the managed bounds,
// applies hysteresis (hysteresis <= 0 disables the band — the unified
// controller runs without one), and reconfigures the pool if a change
// survives. It returns the applied AdaptationEvent (applied=false when
// the evaluation held), and publishes exactly one controller.decision
// event per call when telemetry is enabled.
func runAdapter(c *cluster.Cluster, now sim.Time, rec Recommendation, managed []ManagedResource, shrinkStreak *int, afterHWChange bool, hysteresis float64) (AdaptationEvent, bool, error) {
	perPod, err := c.PoolSize(rec.Resource)
	if err != nil {
		return AdaptationEvent{}, false, err
	}
	replicas := 1
	if svc, err := c.Service(rec.Resource.Service); err == nil && svc.Replicas() > 1 {
		replicas = svc.Replicas()
	}
	current := perPod * replicas

	target := rec.OptimalConcurrency
	saturated := current > 0 && rec.MaxQWindow >= 0.9*float64(current)
	kneeAtEdge := rec.Knee.Fallback ||
		(rec.MaxQWindow > 0 && rec.Knee.X >= 0.85*rec.MaxQWindow)
	underPressure := saturated || rec.GoodFrac < 0.9
	behindBound := rec.BehindUtil >= behindUtilHigh
	reason := reasonApplyKnee
	switch {
	case kneeAtEdge && underPressure && behindBound && saturated:
		// The pool is pinned, deadlines suffer, and the bottleneck behind
		// the pool is already saturated: more concurrency only adds
		// thrash there — probe downward instead.
		target = int(float64(current) * probeDownFactor)
		reason = reasonProbeDown
	case kneeAtEdge && underPressure && !behindBound:
		// Truncated curve with headroom behind the pool: the optimum may
		// lie beyond the current allocation — grow gradually.
		if grown := int(float64(current)*exploreFactor) + 1; grown > target {
			target = grown
		}
		reason = reasonExploreUp
	case saturated && rec.GoodFrac < 0.9 && target >= current && !behindBound:
		// Pool pinned and deadlines missed with no interior evidence of
		// over-allocation: under-allocation — grow.
		if grown := int(float64(current)*exploreFactor) + 1; grown > target {
			target = grown
		}
		reason = reasonGrowUnder
	default:
		// Interior knee confirmed by samples beyond it: apply it, but
		// never shrink below the recent demonstrated demand.
		if target < current {
			if floor := int(shrinkFloorFraction*rec.MaxQRetention + 0.999); target < floor {
				target = floor
				reason = reasonShrinkFloor
			}
		}
	}
	// Debounce shrinks: require consecutive confirmations.
	hold := ""
	if target < current {
		*shrinkStreak++
		if *shrinkStreak < shrinkConfirm && !afterHWChange {
			hold = reasonHoldDebounce
		}
	} else {
		*shrinkStreak = 0
	}
	newPerPod := perPod
	if hold == "" {
		// Re-clamp to the managed resource bounds after policy adjustments.
		for _, res := range managed {
			if res.Ref == rec.Resource {
				target = res.Clamp(target)
				break
			}
		}
		if target == current {
			hold = reasonHoldSteady
		}
	}
	// Hysteresis: ignore small nudges unless hardware just changed (a
	// scale event invalidates the old optimum, so always follow through).
	if hold == "" && !afterHWChange && hysteresis > 0 && current > 0 {
		lo := float64(current) * (1 - hysteresis)
		hi := float64(current) * (1 + hysteresis)
		if v := float64(target); v >= lo && v <= hi {
			hold = reasonHoldHyst
		}
	}
	if hold == "" {
		newPerPod = (target + replicas - 1) / replicas
		if newPerPod < 1 {
			newPerPod = 1
		}
		if newPerPod == perPod {
			hold = reasonHoldPerPod
		}
	}
	applied := hold == ""
	outcome := reason
	to := current
	if applied {
		to = newPerPod * replicas
	} else {
		outcome = hold
	}
	if tel := c.Telemetry(); tel != nil {
		tel.Publish(now, "controller.decision",
			telemetry.String("resource", rec.Resource.String()),
			telemetry.String("critical", rec.CriticalService),
			telemetry.String("reason", outcome),
			telemetry.String("branch", reason),
			telemetry.Bool("applied", applied),
			telemetry.Int("current", current),
			telemetry.Int("target", target),
			telemetry.Int("to", to),
			telemetry.Int("delta", to-current),
			telemetry.Int("opt", rec.OptimalConcurrency),
			telemetry.Dur("threshold_ms", rec.Threshold),
			telemetry.Float("knee_x", rec.Knee.X),
			telemetry.Bool("knee_fallback", rec.Knee.Fallback),
			telemetry.Int("pairs", rec.Pairs),
			telemetry.Float("good_frac", rec.GoodFrac),
			telemetry.Float("max_q_window", rec.MaxQWindow),
			telemetry.Float("max_q_retention", rec.MaxQRetention),
			telemetry.Float("behind_util", rec.BehindUtil),
			telemetry.Bool("after_hw_change", afterHWChange),
		)
	}
	if !applied {
		return AdaptationEvent{}, false, nil
	}
	if err := c.SetPoolSize(rec.Resource, newPerPod); err != nil {
		return AdaptationEvent{}, false, err
	}
	return AdaptationEvent{
		At:              now,
		Resource:        rec.Resource,
		From:            current,
		To:              newPerPod * replicas,
		CriticalService: rec.CriticalService,
		Threshold:       rec.Threshold,
		Pairs:           rec.Pairs,
	}, true, nil
}

// publishControllerError records a failed control step (model
// recommendation or pool application) on the telemetry bus.
func publishControllerError(c *cluster.Cluster, now sim.Time, stage string, err error) {
	if tel := c.Telemetry(); tel != nil {
		tel.Publish(now, "controller.error",
			telemetry.String("stage", stage),
			telemetry.String("error", err.Error()))
	}
}
