package core

import (
	"fmt"
	"math"
	"time"

	"sora/internal/cluster"
	"sora/internal/knee"
	"sora/internal/metrics"
	"sora/internal/sim"
)

// SCTModel is the Scatter-Concurrency-Throughput model of ConScale (Liu
// et al., "Mitigating Large Response Time Fluctuations through Fast
// Concurrency Adapting in Clouds", IPDPS 2020) — the latency-agnostic
// baseline the paper compares SCG against. It shares the SCG pipeline's
// localization and estimation machinery but correlates concurrency with
// raw throughput: no deadline enters the model, which is exactly why it
// over-allocates under tight SLOs (section 5.2, Figure 11).
type SCTModel struct {
	scg *SCGModel
}

// NewSCT returns the ConScale baseline model. The SLA in cfg is only used
// for bookkeeping (SCT ignores latency); pass the experiment's SLO so
// reports stay comparable.
func NewSCT(c *cluster.Cluster, mon *Monitor, cfg SCGConfig) (*SCTModel, error) {
	scg, err := NewSCG(c, mon, cfg)
	if err != nil {
		return nil, err
	}
	return &SCTModel{scg: scg}, nil
}

// CriticalService reuses the SCG localizer: ConScale identifies key
// servers through the same bottleneck analysis.
func (m *SCTModel) CriticalService(now sim.Time) (string, error) {
	return m.scg.CriticalService(now)
}

// CollectPairs builds <Q_n, TP_n> samples: concurrency against raw
// throughput, with no response-time filtering.
func (m *SCTModel) CollectPairs(now sim.Time, ref cluster.ResourceRef, measured string) (qs, tps []float64, err error) {
	conc, err := m.scg.mon.Concurrency(ref)
	if err != nil {
		return nil, nil, err
	}
	svc, err := m.scg.c.Service(measured)
	if err != nil {
		return nil, nil, err
	}
	since := now - m.scg.cfg.Window
	qs, tps = metrics.ConcurrencyThroughputPairs(conc, svc.SpanLog(), since, now, m.scg.cfg.SampleInterval)
	return qs, tps, nil
}

// Estimate finds the knee of the concurrency-throughput curve — the
// classic Kneedle knee where throughput saturates (ConScale's published
// model), not the goodput plateau end SCG uses.
func (m *SCTModel) Estimate(qs, tps []float64) (knee.Result, error) {
	if len(qs) < m.scg.cfg.MinPairs {
		return knee.Result{}, fmt.Errorf("core: %d pairs, need >= %d", len(qs), m.scg.cfg.MinPairs)
	}
	return knee.FindAuto(qs, tps, m.scg.cfg.Knee)
}

// Recommend runs the full SCT pipeline. The recommendation's Threshold is
// zero: throughput needs no deadline.
func (m *SCTModel) Recommend(now sim.Time, managed []ManagedResource) (Recommendation, error) {
	if len(managed) == 0 {
		return Recommendation{}, fmt.Errorf("core: no managed resources")
	}
	critical, err := m.CriticalService(now)
	if err != nil {
		return Recommendation{}, err
	}
	res := m.scg.pickResource(critical, managed, now)
	qs, tps, err := m.CollectPairs(now, res.Ref, res.MeasuredService())
	if err != nil {
		return Recommendation{}, err
	}
	maxWin, maxRet := m.scg.observedConcurrency(now, res.Ref)
	kr, err := m.Estimate(qs, tps)
	if err != nil {
		// Same degenerate-scatter escape as SCG: a pinned pool yields no
		// curve; recommend the observed edge as a fallback so the
		// adapter's exploration rule can widen the range.
		if len(qs) < m.scg.cfg.MinPairs || maxWin <= 0 {
			return Recommendation{}, err
		}
		kr = knee.Result{X: maxWin, Fallback: true}
	}
	// ConScale sizes pools liberally: the SCT main-sequence knee marks
	// where throughput saturates, and the framework allocates headroom
	// above it so throughput is never concurrency-limited (the behaviour
	// Figure 11 shows as ~40 threads where SCG picks ~30).
	opt := res.Clamp(int(math.Round(kr.X * sctHeadroom)))
	return Recommendation{
		CriticalService:    critical,
		Resource:           res.Ref,
		OptimalConcurrency: opt,
		Knee:               kr,
		Pairs:              len(qs),
		MaxQWindow:         maxWin,
		MaxQRetention:      maxRet,
		GoodFrac:           1, // latency-agnostic: deadlines never trigger growth
		BehindUtil:         m.scg.behindUtil(now, res.MeasuredService()),
	}, nil
}

// sctHeadroom is ConScale's allocation margin above the throughput knee.
const sctHeadroom = 1.33

// Model is the interface both concurrency models expose to the Sora
// controller; implementations must be safe to call once per control
// period.
type Model interface {
	// Recommend produces an optimal-concurrency recommendation for one
	// of the managed resources based on the trailing metrics window.
	Recommend(now sim.Time, managed []ManagedResource) (Recommendation, error)
}

// Verify interface compliance.
var (
	_ Model = (*SCGModel)(nil)
	_ Model = (*SCTModel)(nil)
)

// threshold formatting helper shared by logs.
func fmtThreshold(t time.Duration) string {
	if t <= 0 {
		return "n/a"
	}
	return t.String()
}
