// Package core implements the paper's primary contribution: the
// Scatter-Concurrency-Goodput (SCG) model (section 3) and the Sora
// framework that wraps it (section 4) — a Monitoring Module sampling
// fine-grained runtime metrics, a Concurrency Estimator running the SCG
// pipeline (critical-service localization, deadline propagation, metrics
// collection, knee estimation), and a Reallocation Module that pairs a
// hardware-only autoscaler with the Concurrency Adapter.
//
// The latency-agnostic Scatter-Concurrency-Throughput (SCT) model of
// ConScale (Liu et al., IPDPS 2020) is implemented alongside as the
// baseline the paper compares against.
package core

import (
	"fmt"
	"time"

	"sora/internal/cluster"
	"sora/internal/metrics"
	"sora/internal/sim"
)

// DefaultSampleInterval is the fine-grained metric sampling period. The
// paper's Table 1 sensitivity analysis finds 100 ms minimizes estimation
// error across all three studied services.
const DefaultSampleInterval = 100 * time.Millisecond

// Monitor is the Monitoring Module: it samples the instantaneous
// concurrency of tracked soft resources and per-service CPU utilization
// at a fixed fine-grained interval, mirroring the cadvisor+Jaeger agents
// of the paper's deployment. Trace data itself is recorded by the cluster
// into its warehouse; the monitor only adds the gauge series the SCG
// scatter plots need.
type Monitor struct {
	c        *cluster.Cluster
	interval time.Duration

	conc map[cluster.ResourceRef]*metrics.Series

	utilServices []string
	util         map[string]*metrics.Series
	lastWork     map[string]float64
	lastCap      map[string]float64

	ticker  *sim.Ticker
	running bool
}

// NewMonitor returns a monitor sampling the given soft resources and the
// CPU utilization of the given services every interval (zero selects
// DefaultSampleInterval). Start must be called to begin sampling.
func NewMonitor(c *cluster.Cluster, interval time.Duration, refs []cluster.ResourceRef, utilServices []string) (*Monitor, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	m := &Monitor{
		c:            c,
		interval:     interval,
		conc:         make(map[cluster.ResourceRef]*metrics.Series, len(refs)),
		utilServices: append([]string(nil), utilServices...),
		util:         make(map[string]*metrics.Series, len(utilServices)),
		lastWork:     make(map[string]float64, len(utilServices)),
		lastCap:      make(map[string]float64, len(utilServices)),
	}
	for _, ref := range refs {
		if _, err := c.PoolInUse(ref); err != nil {
			return nil, fmt.Errorf("core: cannot monitor %v: %w", ref, err)
		}
		m.conc[ref] = &metrics.Series{}
	}
	for _, name := range m.utilServices {
		svc, err := c.Service(name)
		if err != nil {
			return nil, fmt.Errorf("core: cannot monitor utilization: %w", err)
		}
		m.util[name] = &metrics.Series{}
		m.lastWork[name] = svc.CumulativeBusy()
		m.lastCap[name] = svc.CumulativeCapacity()
	}
	return m, nil
}

// Interval returns the sampling interval.
func (m *Monitor) Interval() time.Duration { return m.interval }

// Start begins sampling. Idempotent.
func (m *Monitor) Start() {
	if m.running {
		return
	}
	m.running = true
	m.ticker = m.c.Kernel().Every(m.interval, m.sample)
}

// Stop halts sampling. The collected series remain queryable.
func (m *Monitor) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.ticker.Stop()
}

// Track adds a soft resource to the monitored set at runtime.
func (m *Monitor) Track(ref cluster.ResourceRef) error {
	if _, ok := m.conc[ref]; ok {
		return nil
	}
	if _, err := m.c.PoolInUse(ref); err != nil {
		return fmt.Errorf("core: cannot track %v: %w", ref, err)
	}
	m.conc[ref] = &metrics.Series{}
	return nil
}

func (m *Monitor) sample() {
	now := m.c.Kernel().Now()
	for ref, series := range m.conc {
		n, err := m.c.PoolInUse(ref)
		if err != nil {
			continue // service disappeared: skip, keep older samples
		}
		series.Add(now, float64(n))
	}
	for _, name := range m.utilServices {
		svc, err := m.c.Service(name)
		if err != nil {
			continue
		}
		work := svc.CumulativeBusy()
		capacity := svc.CumulativeCapacity()
		dw := work - m.lastWork[name]
		dc := capacity - m.lastCap[name]
		m.lastWork[name] = work
		m.lastCap[name] = capacity
		if dc > 0 {
			m.util[name].Add(now, dw/dc)
		}
	}
	// Bound memory: gauge history older than the warehouse retention is
	// useless to every consumer.
	cutoff := now - m.c.Warehouse().Retention()
	for _, series := range m.conc {
		series.Prune(cutoff)
	}
	for _, series := range m.util {
		series.Prune(cutoff)
	}
}

// Concurrency returns the sampled concurrency series of a tracked
// resource, or an error if the resource is not tracked.
func (m *Monitor) Concurrency(ref cluster.ResourceRef) (*metrics.Series, error) {
	s, ok := m.conc[ref]
	if !ok {
		return nil, fmt.Errorf("core: resource %v is not tracked", ref)
	}
	return s, nil
}

// CPUUtil returns the sampled utilization series of a service, or an
// error if the service is not monitored.
func (m *Monitor) CPUUtil(service string) (*metrics.Series, error) {
	s, ok := m.util[service]
	if !ok {
		return nil, fmt.Errorf("core: utilization of %q is not monitored", service)
	}
	return s, nil
}

// MeanUtil returns the mean CPU utilization of a service over
// [since, until), or 0 when no samples exist.
func (m *Monitor) MeanUtil(service string, since, until sim.Time) float64 {
	s, ok := m.util[service]
	if !ok {
		return 0
	}
	pts := s.Window(since, until)
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts))
}
