// Package node models the control plane the paper's testbed takes for
// granted: a fixed fleet of worker nodes with finite cores, a
// bin-packing scheduler with pluggable placement policies, and a pod
// lifecycle with cold-start delay (scheduled → pulling → warming →
// ready). Everything runs on the simulation kernel's virtual clock, so
// a cluster with a control plane stays exactly as deterministic as one
// without: placement is a pure function of fleet state, and every
// lifecycle step is a kernel timer.
//
// The package deliberately knows nothing about services or requests —
// internal/cluster owns those and drives the fleet through Launch,
// Forget, CrashNode and DrainNode. The split keeps the scheduler
// testable in isolation and the dependency arrow pointing one way.
package node

import (
	"fmt"
	"time"

	"sora/internal/sim"
	"sora/internal/telemetry"
)

// Policy selects how the scheduler places a pod among feasible nodes.
type Policy int

// The placement policies. All of them consider only nodes that are up,
// schedulable and have enough free cores; ties break toward the lowest
// node index so placement is deterministic.
const (
	// PolicyFirstFit places on the lowest-indexed feasible node.
	PolicyFirstFit Policy = iota
	// PolicySpread places on the feasible node with the most free
	// cores — the kube-scheduler LeastAllocated default.
	PolicySpread
	// PolicyBinPack places on the feasible node with the least free
	// cores — MostAllocated consolidation.
	PolicyBinPack
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyFirstFit:
		return "firstfit"
	case PolicySpread:
		return "spread"
	case PolicyBinPack:
		return "binpack"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a placement policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "firstfit":
		return PolicyFirstFit, nil
	case "spread":
		return PolicySpread, nil
	case "binpack":
		return PolicyBinPack, nil
	default:
		return 0, fmt.Errorf("node: unknown scheduling policy %q (have firstfit, spread, binpack)", s)
	}
}

// LBPolicy selects how the cluster's dispatcher balances requests over
// a service's propagated endpoints. Defined here so one Config carries
// every control-plane knob.
type LBPolicy int

// The load-balancing policies.
const (
	// LBRoundRobin cycles through the endpoint list — kube-proxy's
	// iptables-mode behaviour and the pre-control-plane default.
	LBRoundRobin LBPolicy = iota
	// LBLeastLoaded picks the endpoint with the fewest admitted
	// requests (ties toward the earliest endpoint).
	LBLeastLoaded
	// LBPowerOfTwo samples two distinct endpoints from the cluster's
	// deterministic stream and picks the less loaded.
	LBPowerOfTwo
)

// String returns the policy's flag spelling.
func (p LBPolicy) String() string {
	switch p {
	case LBRoundRobin:
		return "rr"
	case LBLeastLoaded:
		return "least"
	case LBPowerOfTwo:
		return "p2c"
	default:
		return fmt.Sprintf("LBPolicy(%d)", int(p))
	}
}

// ParseLB parses a load-balancer flag value.
func ParseLB(s string) (LBPolicy, error) {
	switch s {
	case "rr":
		return LBRoundRobin, nil
	case "least":
		return LBLeastLoaded, nil
	case "p2c":
		return LBPowerOfTwo, nil
	default:
		return 0, fmt.Errorf("node: unknown load balancer %q (have rr, least, p2c)", s)
	}
}

// Config sizes the fleet and the control-plane latencies. The zero
// value is invalid; a cluster built without a Config has no control
// plane at all (instant placement, single-endpoint dispatch).
type Config struct {
	// Nodes is the worker-node count; NodeCores the per-node capacity
	// pods reserve against (a pod reserves its service's per-pod core
	// limit at launch time).
	Nodes     int
	NodeCores float64

	// Policy is the scheduler's placement policy.
	Policy Policy

	// SchedDelay is the scheduler decision latency per pod; PullDelay
	// the image pull; WarmDelay the application boot. A pod serves no
	// traffic until all three have elapsed — and, in the cluster layer,
	// until the endpoint view catches up one EndpointLag later.
	SchedDelay time.Duration
	PullDelay  time.Duration
	WarmDelay  time.Duration

	// EndpointLag is how long a membership change (pod ready, crashed,
	// draining, terminated) takes to reach the routing layer.
	EndpointLag time.Duration

	// LB is the replica-level load-balancing policy.
	LB LBPolicy
}

// SplitColdStart distributes one total cold-start budget over the three
// lifecycle delays the way the CLIs expose it as a single -coldstart
// flag: 10% scheduler decision, 40% image pull, 50% warmup.
func SplitColdStart(total time.Duration) (sched, pull, warm time.Duration) {
	sched = total / 10
	pull = total * 4 / 10
	return sched, pull, total - sched - pull
}

// validate checks the fleet dimensions.
func (cfg Config) validate() error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("node: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.NodeCores <= 0 {
		return fmt.Errorf("node: node capacity must be positive, got %g cores", cfg.NodeCores)
	}
	if cfg.SchedDelay < 0 || cfg.PullDelay < 0 || cfg.WarmDelay < 0 || cfg.EndpointLag < 0 {
		return fmt.Errorf("node: negative control-plane delay")
	}
	return nil
}

// State is a pod's lifecycle phase.
type State int

// The pod lifecycle. Pending pods are waiting for the scheduler (either
// its decision latency or free capacity); the cold start proper is
// Scheduled → Pulling → Warming; Ready pods serve traffic (subject to
// endpoint propagation in the cluster layer); Dead pods were crashed,
// evicted or forgotten and never come back — replacement is a fresh pod.
const (
	StatePending State = iota
	StateScheduled
	StatePulling
	StateWarming
	StateReady
	StateDead
)

// String returns the state's lowercase name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateScheduled:
		return "scheduled"
	case StatePulling:
		return "pulling"
	case StateWarming:
		return "warming"
	case StateReady:
		return "ready"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Pod is one placed (or placement-pending) workload instance.
type Pod struct {
	fleet   *Fleet
	id      string
	service string
	cores   float64
	n       *Node // nil until scheduled
	state   State
	// timer is the pending lifecycle timer (pooled; the handle is dead
	// once its callback starts or Cancel returns, so every callback
	// nils it first and every kill path cancels-then-nils).
	timer   *sim.Timer
	onReady func(*Pod)
}

// ID returns the pod name (the cluster uses its instance id).
func (p *Pod) ID() string { return p.id }

// Service returns the owning service name.
func (p *Pod) Service() string { return p.service }

// State returns the pod's lifecycle phase.
func (p *Pod) State() State { return p.state }

// Ready reports whether the pod finished its cold start and is alive.
func (p *Pod) Ready() bool { return p.state == StateReady }

// NodeName returns the resident node's name, or "-" while unscheduled.
func (p *Pod) NodeName() string {
	if p.n == nil {
		return "-"
	}
	return p.n.id
}

// Node is one worker machine.
type Node struct {
	idx      int
	id       string
	cores    float64
	used     float64
	pods     []*Pod
	down     bool
	cordoned bool
}

func (n *Node) free() float64 { return n.cores - n.used }

// schedulable reports whether the scheduler may place onto n.
func (n *Node) schedulable() bool { return !n.down && !n.cordoned }

// Fleet is the worker-node pool plus the scheduler state.
type Fleet struct {
	k   *sim.Kernel
	cfg Config
	tel *telemetry.Recorder

	nodes []*Node
	// pending holds pods the scheduler could not place, FIFO. Every
	// capacity change (pod exit, node restore, uncordon) retries the
	// whole queue in order, so placement stays deterministic.
	pending []*Pod
}

// NewFleet builds the node pool. The telemetry recorder may be nil.
func NewFleet(k *sim.Kernel, cfg Config, tel *telemetry.Recorder) (*Fleet, error) {
	if k == nil {
		return nil, fmt.Errorf("node: nil kernel")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{k: k, cfg: cfg, tel: tel}
	for i := 0; i < cfg.Nodes; i++ {
		f.nodes = append(f.nodes, &Node{
			idx:   i,
			id:    fmt.Sprintf("node-%d", i),
			cores: cfg.NodeCores,
		})
	}
	return f, nil
}

// Config returns the fleet's configuration.
func (f *Fleet) Config() Config { return f.cfg }

// NodeCount returns the fleet size.
func (f *Fleet) NodeCount() int { return len(f.nodes) }

// NodeName returns node i's name.
func (f *Fleet) NodeName(i int) string { return f.nodes[i].id }

// NodeDown reports whether node i is crashed.
func (f *Fleet) NodeDown(i int) bool { return f.nodes[i].down }

// NodeCordoned reports whether node i is cordoned (draining or drained).
func (f *Fleet) NodeCordoned(i int) bool { return f.nodes[i].cordoned }

// NodeLoad returns node i's reserved cores and resident pod count.
func (f *Fleet) NodeLoad(i int) (used float64, pods int) {
	n := f.nodes[i]
	return n.used, len(n.pods)
}

// PendingPods returns how many pods are waiting for capacity.
func (f *Fleet) PendingPods() int { return len(f.pending) }

// Launch submits one pod to the scheduler. After the scheduler decision
// latency it is placed (or queued if nothing fits), then cold-starts on
// its node; onReady fires when it reaches StateReady. The returned pod
// is live immediately for bookkeeping (Forget cancels it at any stage).
func (f *Fleet) Launch(service, id string, cores float64, onReady func(*Pod)) *Pod {
	p := &Pod{fleet: f, id: id, service: service, cores: cores, onReady: onReady}
	p.timer = f.k.Schedule(f.cfg.SchedDelay, func() {
		p.timer = nil
		f.place(p)
	})
	return p
}

// place runs one scheduling attempt; pods that fit nowhere join the
// pending queue.
func (f *Fleet) place(p *Pod) {
	if p.state == StateDead {
		return
	}
	n := f.choose(p.cores)
	if n == nil {
		f.pending = append(f.pending, p)
		return
	}
	f.bind(p, n)
}

// choose picks the node for one pod under the configured policy, or nil
// when no schedulable node has capacity. The float tolerance absorbs
// accumulated reservation arithmetic error.
func (f *Fleet) choose(cores float64) *Node {
	const eps = 1e-9
	var best *Node
	for _, n := range f.nodes {
		if !n.schedulable() || n.free()+eps < cores {
			continue
		}
		switch f.cfg.Policy {
		case PolicyFirstFit:
			return n
		case PolicySpread:
			if best == nil || n.free() > best.free()+eps {
				best = n
			}
		case PolicyBinPack:
			if best == nil || n.free() < best.free()-eps {
				best = n
			}
		}
	}
	return best
}

// bind reserves capacity and starts the cold start.
func (f *Fleet) bind(p *Pod, n *Node) {
	p.n = n
	n.used += p.cores
	n.pods = append(n.pods, p)
	p.state = StateScheduled
	if f.tel != nil {
		f.tel.Publish(f.k.Now(), "node.schedule",
			telemetry.String("pod", p.id),
			telemetry.String("service", p.service),
			telemetry.String("node", n.id),
			telemetry.Float("cores", p.cores))
	}
	p.timer = f.k.Schedule(f.cfg.PullDelay, func() {
		p.timer = nil
		if p.state != StateScheduled {
			return
		}
		p.state = StatePulling
		p.timer = f.k.Schedule(f.cfg.WarmDelay, func() {
			p.timer = nil
			if p.state != StatePulling {
				return
			}
			p.state = StateWarming
			// Warming → Ready is instantaneous once the boot budget has
			// elapsed; the two states exist so observers can distinguish
			// "binary arriving" from "process booting" mid-flight.
			p.state = StateReady
			if f.tel != nil {
				f.tel.Publish(f.k.Now(), "node.ready",
					telemetry.String("pod", p.id),
					telemetry.String("service", p.service),
					telemetry.String("node", n.id))
			}
			if p.onReady != nil {
				p.onReady(p)
			}
		})
	})
}

// kill finalizes a pod without releasing node capacity (the caller
// decides whether capacity comes back).
func (p *Pod) kill() {
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
	p.state = StateDead
	p.onReady = nil
}

// Forget removes a pod from the fleet: its reservation is released (or
// its pending entry dropped) and freed capacity is re-offered to the
// pending queue. The cluster calls this when a drained pod is reaped or
// an unplaced pod's instance is removed.
func (f *Fleet) Forget(p *Pod) {
	if p == nil || p.state == StateDead {
		return
	}
	if n := p.n; n != nil {
		n.used -= p.cores
		n.pods = removePod(n.pods, p)
		p.n = nil
	} else {
		f.pending = removePod(f.pending, p)
	}
	p.kill()
	f.retryPending()
}

// CrashNode fails node i: every resident pod dies with it (whatever its
// lifecycle stage) and the node stops accepting placements until
// RestoreNode. The dead pods are returned so the cluster can fail their
// instances and launch replacements.
func (f *Fleet) CrashNode(i int) []*Pod {
	n := f.nodes[i]
	if n.down {
		return nil
	}
	n.down = true
	victims := n.pods
	n.pods = nil
	n.used = 0
	for _, p := range victims {
		p.n = nil
		p.kill()
	}
	if f.tel != nil {
		f.tel.Publish(f.k.Now(), "node.crash",
			telemetry.String("node", n.id),
			telemetry.Int("pods", len(victims)))
	}
	return victims
}

// RestoreNode brings a crashed node back empty; pending pods may now
// place onto it.
func (f *Fleet) RestoreNode(i int) {
	n := f.nodes[i]
	if !n.down {
		return
	}
	n.down = false
	f.retryPending()
}

// DrainNode cordons node i and returns its resident pods. The pods stay
// placed — the cluster evicts them gracefully (drain, then Forget once
// idle) — but the scheduler places nothing new on the node until
// UncordonNode.
func (f *Fleet) DrainNode(i int) []*Pod {
	n := f.nodes[i]
	if n.down || n.cordoned {
		return nil
	}
	n.cordoned = true
	out := make([]*Pod, len(n.pods))
	copy(out, n.pods)
	if f.tel != nil {
		f.tel.Publish(f.k.Now(), "node.drain",
			telemetry.String("node", n.id),
			telemetry.Int("pods", len(out)))
	}
	return out
}

// UncordonNode reopens a drained node for scheduling.
func (f *Fleet) UncordonNode(i int) {
	n := f.nodes[i]
	if !n.cordoned {
		return
	}
	n.cordoned = false
	f.retryPending()
}

// retryPending re-runs the scheduler over the pending queue in FIFO
// order after any capacity change. Pods that still fit nowhere keep
// their position.
func (f *Fleet) retryPending() {
	if len(f.pending) == 0 {
		return
	}
	kept := f.pending[:0]
	for _, p := range f.pending {
		if p.state == StateDead {
			continue
		}
		if n := f.choose(p.cores); n != nil {
			f.bind(p, n)
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(f.pending); i++ {
		f.pending[i] = nil
	}
	f.pending = kept
}

func removePod(pods []*Pod, p *Pod) []*Pod {
	kept := pods[:0]
	for _, q := range pods {
		if q != p {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(pods); i++ {
		pods[i] = nil
	}
	return kept
}
