package node

import (
	"testing"
	"time"

	"sora/internal/sim"
	"sora/internal/telemetry"
)

func testConfig(policy Policy) Config {
	return Config{
		Nodes:      3,
		NodeCores:  4,
		Policy:     policy,
		SchedDelay: 100 * time.Millisecond,
		PullDelay:  400 * time.Millisecond,
		WarmDelay:  500 * time.Millisecond,
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel(1)
	for _, cfg := range []Config{
		{Nodes: 0, NodeCores: 4},
		{Nodes: 2, NodeCores: 0},
		{Nodes: 2, NodeCores: 4, SchedDelay: -time.Second},
	} {
		if _, err := NewFleet(k, cfg, nil); err == nil {
			t.Errorf("NewFleet(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := NewFleet(nil, testConfig(PolicyFirstFit), nil); err == nil {
		t.Error("NewFleet accepted a nil kernel")
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, p := range []Policy{PolicyFirstFit, PolicySpread, PolicyBinPack} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, lb := range []LBPolicy{LBRoundRobin, LBLeastLoaded, LBPowerOfTwo} {
		got, err := ParseLB(lb.String())
		if err != nil || got != lb {
			t.Errorf("ParseLB(%q) = %v, %v", lb.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
	if _, err := ParseLB("bogus"); err == nil {
		t.Error("ParseLB accepted bogus")
	}
}

func TestSplitColdStart(t *testing.T) {
	sched, pull, warm := SplitColdStart(10 * time.Second)
	if sched+pull+warm != 10*time.Second {
		t.Fatalf("split loses time: %v + %v + %v", sched, pull, warm)
	}
	if sched != time.Second || pull != 4*time.Second || warm != 5*time.Second {
		t.Fatalf("unexpected split %v/%v/%v", sched, pull, warm)
	}
}

// TestPodLifecycle walks one pod through the cold start on the virtual
// clock and checks the state at each boundary.
func TestPodLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	f, err := NewFleet(k, testConfig(PolicyFirstFit), nil)
	if err != nil {
		t.Fatal(err)
	}
	var readyAt sim.Time
	p := f.Launch("svc", "svc-0", 2, func(*Pod) { readyAt = k.Now() })
	if p.State() != StatePending {
		t.Fatalf("state before scheduling = %v", p.State())
	}
	k.RunUntil(sim.Time(150 * time.Millisecond))
	if p.State() != StateScheduled || p.NodeName() != "node-0" {
		t.Fatalf("after sched delay: state %v on %s", p.State(), p.NodeName())
	}
	k.RunUntil(sim.Time(600 * time.Millisecond))
	if p.State() != StatePulling {
		t.Fatalf("after pull delay: state %v", p.State())
	}
	k.Run()
	if !p.Ready() {
		t.Fatalf("final state %v", p.State())
	}
	want := sim.Time(1000 * time.Millisecond)
	if readyAt != want {
		t.Fatalf("ready at %v, want %v", readyAt, want)
	}
	if used, pods := f.NodeLoad(0); used != 2 || pods != 1 {
		t.Fatalf("node 0 load = %g cores, %d pods", used, pods)
	}
}

// TestPlacementPolicies pins where each policy puts a pod given an
// asymmetric load.
func TestPlacementPolicies(t *testing.T) {
	cases := []struct {
		policy Policy
		want   string
	}{
		{PolicyFirstFit, "node-0"}, // first with capacity
		{PolicySpread, "node-2"},   // most free cores
		{PolicyBinPack, "node-1"},  // least free cores that still fit
	}
	for _, tc := range cases {
		k := sim.NewKernel(1)
		f, err := NewFleet(k, testConfig(tc.policy), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-load: node-0 holds 1 core, node-1 holds 3, node-2 empty.
		f.Launch("seed", "seed-0", 1, nil)
		f.Launch("seed", "seed-1", 3, nil)
		k.Run()
		// Force seed placement onto distinct nodes under every policy by
		// checking and, if needed, skipping: with firstfit both seeds land
		// on node-0 (1+3 = 4 cores, full), changing the preload shape.
		if tc.policy == PolicyFirstFit {
			// node-0 is full (4/4); the probe must go to node-1.
			p := f.Launch("svc", "svc-0", 1, nil)
			k.Run()
			if got := p.NodeName(); got != "node-1" {
				t.Errorf("firstfit placed on %s, want node-1 (node-0 full)", got)
			}
			continue
		}
		p := f.Launch("svc", "svc-0", 1, nil)
		k.Run()
		if got := p.NodeName(); got != tc.want {
			used0, _ := f.NodeLoad(0)
			used1, _ := f.NodeLoad(1)
			used2, _ := f.NodeLoad(2)
			t.Errorf("%v placed on %s, want %s (loads %g/%g/%g)",
				tc.policy, got, tc.want, used0, used1, used2)
		}
	}
}

// TestPendingQueue pins that pods that fit nowhere wait FIFO and place
// as soon as capacity frees.
func TestPendingQueue(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig(PolicyFirstFit)
	cfg.Nodes = 1
	f, err := NewFleet(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Launch("svc", "svc-0", 3, nil)
	b := f.Launch("svc", "svc-1", 3, nil)
	k.Run()
	if !a.Ready() || b.State() != StatePending {
		t.Fatalf("states a=%v b=%v, want ready/pending", a.State(), b.State())
	}
	if f.PendingPods() != 1 {
		t.Fatalf("pending = %d, want 1", f.PendingPods())
	}
	f.Forget(a)
	k.Run()
	if !b.Ready() {
		t.Fatalf("b never placed after capacity freed: %v", b.State())
	}
	if f.PendingPods() != 0 {
		t.Fatalf("pending = %d after placement", f.PendingPods())
	}
}

// TestCrashNodeKillsResidents pins that a node crash kills pods at
// every lifecycle stage and releases nothing until restore.
func TestCrashNodeKillsResidents(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig(PolicyFirstFit)
	cfg.Nodes = 1
	f, err := NewFleet(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := f.Launch("svc", "svc-0", 1, nil)
	k.Run()
	warming := f.Launch("svc", "svc-1", 1, nil)
	k.RunUntil(k.Now() + sim.Time(200*time.Millisecond)) // scheduled, mid-pull
	victims := f.CrashNode(0)
	if len(victims) != 2 {
		t.Fatalf("crash returned %d victims, want 2", len(victims))
	}
	if ready.State() != StateDead || warming.State() != StateDead {
		t.Fatalf("victims not dead: %v / %v", ready.State(), warming.State())
	}
	k.Run() // any leftover lifecycle timer must be inert
	if warming.State() != StateDead {
		t.Fatalf("dead pod resurrected: %v", warming.State())
	}
	// The node accepts nothing while down…
	p := f.Launch("svc", "svc-2", 1, nil)
	k.Run()
	if p.State() != StatePending {
		t.Fatalf("placed on a crashed node: %v on %s", p.State(), p.NodeName())
	}
	// …and pending pods place on restore.
	f.RestoreNode(0)
	k.Run()
	if !p.Ready() {
		t.Fatalf("pod not placed after restore: %v", p.State())
	}
	if f.CrashNode(0); f.NodeDown(0) != true {
		t.Fatal("second crash should keep the node down")
	}
}

// TestDrainNode pins cordon semantics: residents stay placed, new
// placements avoid the node, uncordon reopens it.
func TestDrainNode(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig(PolicyFirstFit)
	cfg.Nodes = 1
	f, err := NewFleet(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Launch("svc", "svc-0", 2, nil)
	k.Run()
	victims := f.DrainNode(0)
	if len(victims) != 1 || victims[0] != a {
		t.Fatalf("drain returned %v", victims)
	}
	if !a.Ready() {
		t.Fatalf("drain must not kill residents: %v", a.State())
	}
	b := f.Launch("svc", "svc-1", 1, nil)
	k.Run()
	if b.State() != StatePending {
		t.Fatalf("scheduled onto a cordoned node: %v", b.State())
	}
	f.Forget(a) // graceful eviction finished
	k.Run()
	if b.State() != StatePending {
		t.Fatal("cordoned node must stay closed even with capacity")
	}
	f.UncordonNode(0)
	k.Run()
	if !b.Ready() {
		t.Fatalf("pod not placed after uncordon: %v", b.State())
	}
	if f.DrainNode(0) == nil {
		// second drain of an uncordoned node with residents returns them
		t.Fatal("drain after uncordon returned nil")
	}
}

// TestForgetPendingPod pins that forgetting an unplaced pod removes its
// queue entry and that a forgotten pod never becomes ready.
func TestForgetPendingPod(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig(PolicyFirstFit)
	cfg.Nodes = 1
	f, err := NewFleet(k, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Launch("svc", "svc-0", 4, nil)
	fired := false
	b := f.Launch("svc", "svc-1", 4, func(*Pod) { fired = true })
	k.Run()
	f.Forget(b)
	f.Forget(a)
	k.Run()
	if fired {
		t.Fatal("forgotten pending pod became ready")
	}
	if b.State() != StateDead || f.PendingPods() != 0 {
		t.Fatalf("state %v, pending %d", b.State(), f.PendingPods())
	}
}

// TestFleetEvents pins the telemetry kinds the fleet emits.
func TestFleetEvents(t *testing.T) {
	k := sim.NewKernel(1)
	rec := telemetry.NewRecorder("test")
	f, err := NewFleet(k, testConfig(PolicyFirstFit), rec)
	if err != nil {
		t.Fatal(err)
	}
	f.Launch("svc", "svc-0", 1, nil)
	k.Run()
	f.DrainNode(0)
	f.CrashNode(0)
	counts := map[string]int{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	for _, kind := range []string{"node.schedule", "node.ready", "node.drain", "node.crash"} {
		if counts[kind] != 1 {
			t.Errorf("event %q published %d times, want 1 (all: %v)", kind, counts[kind], counts)
		}
	}
}

// TestSchedulerDeterminism pins that two fleets driven identically
// produce identical placements — the foundation of the serial/parallel
// artifact equivalence upstream.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() []string {
		k := sim.NewKernel(7)
		f, err := NewFleet(k, testConfig(PolicySpread), nil)
		if err != nil {
			t.Fatal(err)
		}
		var pods []*Pod
		for i := 0; i < 8; i++ {
			pods = append(pods, f.Launch("svc", "p", float64(1+i%3), nil))
		}
		k.Run()
		var names []string
		for _, p := range pods {
			names = append(names, p.NodeName())
		}
		return names
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
