package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"sora/internal/sim"
)

func ms(n int) sim.Time { return time.Duration(n) * time.Millisecond }

func TestSeriesWindowAndLast(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(ms(i*100), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	win := s.Window(ms(200), ms(500))
	if len(win) != 3 {
		t.Fatalf("window has %d points, want 3", len(win))
	}
	if win[0].V != 2 || win[2].V != 4 {
		t.Errorf("window = %v", win)
	}
	last, ok := s.Last()
	if !ok || last.V != 9 {
		t.Errorf("Last = %v ok=%v", last, ok)
	}
	var empty Series
	if _, ok := empty.Last(); ok {
		t.Error("empty series Last ok=true")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Add(ms(100), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-order sample")
		}
	}()
	s.Add(ms(50), 2)
}

func TestSeriesPrune(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(ms(i*100), float64(i))
	}
	s.Prune(ms(500))
	if s.Len() != 5 {
		t.Fatalf("Len after prune = %d, want 5", s.Len())
	}
	if first := s.Window(0, ms(10000))[0]; first.T != ms(500) {
		t.Errorf("first point at %v, want 500ms", first.T)
	}
}

func TestSeriesBucketMeans(t *testing.T) {
	var s Series
	// Bucket 0: values 1,3 (mean 2); bucket 1: empty; bucket 2: value 5.
	s.Add(ms(10), 1)
	s.Add(ms(90), 3)
	s.Add(ms(250), 5)
	got := s.BucketMeans(0, ms(300), 100*time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("got %d buckets, want 3", len(got))
	}
	if got[0] != 2 {
		t.Errorf("bucket 0 mean = %g, want 2", got[0])
	}
	if !math.IsNaN(got[1]) {
		t.Errorf("bucket 1 = %g, want NaN", got[1])
	}
	if got[2] != 5 {
		t.Errorf("bucket 2 mean = %g, want 5", got[2])
	}
}

func TestCompletionLogCountsAndRates(t *testing.T) {
	var l CompletionLog
	l.Add(ms(100), 50*time.Millisecond)
	l.Add(ms(200), 150*time.Millisecond)
	l.Add(ms(300), 250*time.Millisecond)
	l.Add(ms(400), 350*time.Millisecond)
	good, bad := l.Counts(0, ms(1000), 200*time.Millisecond)
	if good != 2 || bad != 2 {
		t.Errorf("Counts = (%d,%d), want (2,2)", good, bad)
	}
	// 2 good over 1 second.
	if rate := l.GoodputRate(0, ms(1000), 200*time.Millisecond); rate != 2 {
		t.Errorf("GoodputRate = %g, want 2", rate)
	}
	if rate := l.ThroughputRate(0, ms(1000)); rate != 4 {
		t.Errorf("ThroughputRate = %g, want 4", rate)
	}
	if rate := l.GoodputRate(ms(100), ms(100), time.Second); rate != 0 {
		t.Errorf("empty window rate = %g, want 0", rate)
	}
}

func TestCompletionLogThresholdBoundaryInclusive(t *testing.T) {
	var l CompletionLog
	l.Add(ms(10), 100*time.Millisecond)
	good, bad := l.Counts(0, ms(100), 100*time.Millisecond)
	if good != 1 || bad != 0 {
		t.Errorf("RT == threshold must count as goodput: (%d,%d)", good, bad)
	}
}

func TestCompletionLogBucketRates(t *testing.T) {
	var l CompletionLog
	// Bucket 0 (0-100ms): 2 completions, 1 good.
	l.Add(ms(10), 50*time.Millisecond)
	l.Add(ms(20), 500*time.Millisecond)
	// Bucket 1: 1 completion, 1 good.
	l.Add(ms(150), 10*time.Millisecond)
	goodput, throughput := l.BucketRates(0, ms(200), 100*time.Millisecond, 100*time.Millisecond)
	if len(goodput) != 2 {
		t.Fatalf("%d buckets, want 2", len(goodput))
	}
	// Rates are per second: 1 good per 0.1s = 10/s.
	if goodput[0] != 10 || throughput[0] != 20 {
		t.Errorf("bucket0 = (%g,%g), want (10,20)", goodput[0], throughput[0])
	}
	if goodput[1] != 10 || throughput[1] != 10 {
		t.Errorf("bucket1 = (%g,%g), want (10,10)", goodput[1], throughput[1])
	}
}

func TestCompletionLogPercentile(t *testing.T) {
	var l CompletionLog
	for i := 1; i <= 100; i++ {
		l.Add(ms(i), time.Duration(i)*time.Millisecond)
	}
	p99, err := l.Percentile(99, 0, ms(1000))
	if err != nil {
		t.Fatal(err)
	}
	if p99 < 98*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want ~99ms", p99)
	}
	if _, err := l.Percentile(99, ms(5000), ms(6000)); err == nil {
		t.Error("expected error for empty window")
	}
}

func TestCompletionLogPrune(t *testing.T) {
	var l CompletionLog
	for i := 0; i < 10; i++ {
		l.Add(ms(i*100), time.Millisecond)
	}
	l.Prune(ms(700))
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestCompletionLogOutOfOrderPanics(t *testing.T) {
	var l CompletionLog
	l.Add(ms(100), time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.Add(ms(99), time.Millisecond)
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(10*time.Millisecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5 * time.Millisecond)   // bin 0
	h.Observe(15 * time.Millisecond)  // bin 1
	h.Observe(15 * time.Millisecond)  // bin 1
	h.Observe(99 * time.Millisecond)  // bin 9
	h.Observe(500 * time.Millisecond) // overflow
	h.Observe(-time.Millisecond)      // clamped to bin 0
	bins := h.Bins()
	if bins[0] != 2 || bins[1] != 2 || bins[9] != 1 {
		t.Errorf("bins = %v", bins)
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	if got := h.FractionBelow(20 * time.Millisecond); got != 4.0/6 {
		t.Errorf("FractionBelow(20ms) = %g, want %g", got, 4.0/6)
	}
	if h.BinWidth() != 10*time.Millisecond {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
}

func TestHistogramInvalidShape(t *testing.T) {
	if _, err := NewHistogram(0, 5); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := NewHistogram(time.Millisecond, 0); err == nil {
		t.Error("expected error for zero bins")
	}
}

func TestConcurrencyGoodputPairs(t *testing.T) {
	var conc Series
	var log CompletionLog
	// Bucket 0: Q=5, 2 good completions; bucket 1: no samples (skipped);
	// bucket 2: Q=10, 1 good 1 bad.
	conc.Add(ms(50), 5)
	conc.Add(ms(250), 10)
	log.Add(ms(10), 50*time.Millisecond)
	log.Add(ms(20), 60*time.Millisecond)
	log.Add(ms(260), 70*time.Millisecond)
	log.Add(ms(270), 900*time.Millisecond)
	qs, gps := ConcurrencyGoodputPairs(&conc, &log, 0, ms(300), 100*time.Millisecond, 100*time.Millisecond)
	if len(qs) != 2 {
		t.Fatalf("%d pairs, want 2 (NaN bucket skipped)", len(qs))
	}
	if qs[0] != 5 || gps[0] != 20 {
		t.Errorf("pair0 = (%g,%g), want (5,20)", qs[0], gps[0])
	}
	if qs[1] != 10 || gps[1] != 10 {
		t.Errorf("pair1 = (%g,%g), want (10,10)", qs[1], gps[1])
	}
}

func TestConcurrencyThroughputPairsIgnoresLatency(t *testing.T) {
	var conc Series
	var log CompletionLog
	conc.Add(ms(50), 4)
	log.Add(ms(10), time.Hour) // terrible RT still counts for throughput
	log.Add(ms(20), time.Nanosecond)
	qs, tps := ConcurrencyThroughputPairs(&conc, &log, 0, ms(100), 100*time.Millisecond)
	if len(qs) != 1 || tps[0] != 20 {
		t.Errorf("pairs = %v/%v, want one pair with tp 20", qs, tps)
	}
}

// Property: goodput <= throughput for any threshold and window.
func TestQuickGoodputNeverExceedsThroughput(t *testing.T) {
	f := func(rts []uint16, thresholdRaw uint16) bool {
		var l CompletionLog
		for i, rt := range rts {
			l.Add(ms(i*10), time.Duration(rt)*time.Millisecond)
		}
		threshold := time.Duration(thresholdRaw) * time.Millisecond
		until := ms(len(rts)*10 + 10)
		return l.GoodputRate(0, until, threshold) <= l.ThroughputRate(0, until)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: goodput is monotonically nondecreasing in the threshold.
func TestQuickGoodputMonotoneInThreshold(t *testing.T) {
	f := func(rts []uint16) bool {
		var l CompletionLog
		for i, rt := range rts {
			l.Add(ms(i*10), time.Duration(rt)*time.Millisecond)
		}
		until := ms(len(rts)*10 + 10)
		prev := -1.0
		for _, th := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second, time.Hour} {
			g := l.GoodputRate(0, until, th)
			if g < prev {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals observations and bins+overflow==total.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(vals []uint16) bool {
		h, err := NewHistogram(5*time.Millisecond, 20)
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Observe(time.Duration(v) * time.Millisecond)
		}
		sum := h.Overflow()
		for _, c := range h.Bins() {
			sum += c
		}
		return sum == len(vals) && h.Total() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBucketRates(b *testing.B) {
	var l CompletionLog
	for i := 0; i < 100_000; i++ {
		l.Add(ms(i), time.Duration(i%400)*time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.BucketRates(0, ms(100_000), 100*time.Millisecond, 200*time.Millisecond)
	}
}

// TestHistogramBoundaries pins the half-open bin convention
// [i*w, (i+1)*w): an observation exactly on a bin edge lands in the
// higher bin, and one exactly on the last edge counts as overflow.
func TestHistogramBoundaries(t *testing.T) {
	w := 10 * time.Millisecond
	h, err := NewHistogram(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0)          // first edge -> bin 0
	h.Observe(w - 1)      // just under the first edge -> bin 0
	h.Observe(w)          // exactly one bin width -> bin 1
	h.Observe(10*w - 1)   // last representable value -> bin 9
	h.Observe(10 * w)     // exactly the upper bound -> overflow
	h.Observe(10*w + 1)   // beyond the last bin -> overflow
	h.Observe(-time.Hour) // negative clamps to bin 0
	bins := h.Bins()
	if bins[0] != 3 {
		t.Errorf("bin 0 = %d, want 3 (edge, sub-edge, clamped negative)", bins[0])
	}
	if bins[1] != 1 {
		t.Errorf("bin 1 = %d, want 1 (exact bin-width observation)", bins[1])
	}
	if bins[9] != 1 {
		t.Errorf("bin 9 = %d, want 1", bins[9])
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2 (exact upper bound plus beyond)", h.Overflow())
	}
	// Total must include overflow: every observation is counted somewhere.
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	sum := h.Overflow()
	for _, c := range bins {
		sum += c
	}
	if sum != h.Total() {
		t.Errorf("bins+overflow = %d, Total = %d; conservation violated", sum, h.Total())
	}
}

// TestSeriesBoundMemory is the regression test for unbounded Series
// growth on streaming runs: with a bound set, ten million samples must
// leave both the length and the backing array capacity bounded by a
// small multiple of the bound, not the sample count.
func TestSeriesBoundMemory(t *testing.T) {
	const bound = 10_000
	const n = 10_000_000
	var s Series
	s.SetBound(bound)
	for i := 0; i < n; i++ {
		s.Add(ms(i), float64(i))
	}
	// The trim is amortized, so the live length oscillates within
	// [bound, 2*bound] rather than pinning exactly at bound.
	if s.Len() > 2*bound {
		t.Fatalf("Len = %d, want <= %d", s.Len(), 2*bound)
	}
	// trim fires at len 2*bound+1, so append growth can at most double
	// past that point before the length stops rising: cap stays O(bound).
	if c := cap(s.pts); c > 5*bound {
		t.Fatalf("cap = %d, want <= %d (memory not bounded)", c, 5*bound)
	}
	// The retained window is the most recent `bound` samples, intact and
	// in order.
	last, ok := s.Last()
	if !ok || last.T != ms(n-1) || last.V != float64(n-1) {
		t.Fatalf("Last = %+v ok=%v, want T=%v V=%v", last, ok, ms(n-1), float64(n-1))
	}
	first := s.pts[0]
	if first.T != ms(n-s.Len()) {
		t.Fatalf("oldest retained = %v, want %v", first.T, ms(n-s.Len()))
	}
}

// TestSeriesBoundQueries: trimming must be invisible to the query
// surface — Window, BucketMeans and Prune see a normal sorted series.
func TestSeriesBoundQueries(t *testing.T) {
	var s Series
	s.SetBound(10)
	for i := 0; i < 100; i++ {
		s.Add(ms(i), float64(i))
	}
	if s.Len() > 20 {
		t.Fatalf("Len = %d, want <= 20 (2x bound slack)", s.Len())
	}
	// All retained points are the newest and still sorted.
	w := s.Window(0, ms(1000))
	if len(w) != s.Len() {
		t.Fatalf("Window returned %d of %d points", len(w), s.Len())
	}
	for i := 1; i < len(w); i++ {
		if w[i].T <= w[i-1].T {
			t.Fatalf("retained points out of order at %d: %v after %v", i, w[i].T, w[i-1].T)
		}
	}
	if w[len(w)-1].V != 99 {
		t.Fatalf("newest retained V = %v, want 99", w[len(w)-1].V)
	}
	// Prune still works on the trimmed slice.
	cut := w[len(w)-3].T
	s.Prune(cut)
	if s.Len() != 3 {
		t.Fatalf("Len after Prune = %d, want 3", s.Len())
	}
	// SetBound(0) restores unbounded growth.
	s.SetBound(0)
	for i := 100; i < 200; i++ {
		s.Add(ms(i), float64(i))
	}
	if s.Len() != 103 {
		t.Fatalf("Len after unbinding = %d, want 103", s.Len())
	}
	// Re-binding past the slack trims immediately.
	s.SetBound(5)
	if s.Len() != 5 {
		t.Fatalf("Len after SetBound(5) = %d, want 5", s.Len())
	}
	if last, _ := s.Last(); last.V != 199 {
		t.Fatalf("newest after re-bound V = %v, want 199", last.V)
	}
}
