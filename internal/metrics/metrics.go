// Package metrics provides the fine-grained runtime measurement machinery
// of the Sora reproduction: time series of sampled gauges (concurrency,
// CPU utilization), completion logs with goodput/badput accounting against
// arbitrary response-time thresholds, latency percentiles and histograms.
//
// Goodput follows the paper's simplified SLA model (section 2.3): a
// completion whose end-to-end response time is less than or equal to the
// threshold counts as goodput, everything else as badput; their sum is the
// classic throughput.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sora/internal/sim"
	"sora/internal/stats"
)

// Point is one sampled gauge observation.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series of gauge samples, appended in
// nondecreasing time order (enforced). By default it grows without
// limit; SetBound turns it into a ring keeping only the most recent
// samples, which is what lets streaming million-user runs hold memory
// flat while the online models still see their trailing window.
type Series struct {
	pts   []Point
	bound int
}

// SetBound caps the series at the n most recent samples (0 restores
// unbounded growth). Trimming is amortized: the slice is allowed to
// reach 2n before the newest n samples are copied down in place, so a
// bounded series costs O(1) amortized per Add and never holds more than
// ~2n points regardless of run length.
func (s *Series) SetBound(n int) {
	if n < 0 {
		n = 0
	}
	s.bound = n
	s.trim()
}

// Bound returns the configured sample cap (0 = unbounded).
func (s *Series) Bound() int { return s.bound }

// trim enforces the bound once the slice has outgrown the slack that
// amortizes the copy-down.
func (s *Series) trim() {
	if s.bound == 0 || len(s.pts) <= 2*s.bound {
		return
	}
	keep := s.pts[len(s.pts)-s.bound:]
	copy(s.pts, keep)
	s.pts = s.pts[:s.bound]
}

// Add appends an observation. Out-of-order appends panic: the simulator's
// single-threaded kernel makes them impossible unless a component is
// misusing the series.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		panic(fmt.Sprintf("metrics: out-of-order sample at %v after %v", t, s.pts[n-1].T))
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	s.trim()
}

// Len returns the number of stored samples.
func (s *Series) Len() int { return len(s.pts) }

// Window returns the samples with T in [since, until).
func (s *Series) Window(since, until sim.Time) []Point {
	lo := s.lowerBound(since)
	hi := s.lowerBound(until)
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.pts[lo:hi])
	return out
}

// Last returns the most recent sample and true, or a zero Point and false
// when the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}

// Prune discards samples older than the cutoff.
func (s *Series) Prune(before sim.Time) {
	i := s.lowerBound(before)
	if i == 0 {
		return
	}
	remaining := len(s.pts) - i
	copy(s.pts, s.pts[i:])
	s.pts = s.pts[:remaining]
}

// BucketMeans partitions [since, until) into fixed buckets and returns the
// mean sample value per bucket. Buckets with no samples carry NaN so the
// caller can distinguish "no data" from zero.
func (s *Series) BucketMeans(since, until sim.Time, bucket time.Duration) []float64 {
	n := bucketCount(since, until, bucket)
	if n == 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range s.pts[s.lowerBound(since):s.lowerBound(until)] {
		idx := int((p.T - since) / bucket)
		if idx < 0 || idx >= n {
			continue
		}
		sums[idx] += p.V
		counts[idx]++
	}
	out := make([]float64, n)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

func (s *Series) lowerBound(t sim.Time) int {
	return sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= t })
}

// Completion records one finished request.
type Completion struct {
	At sim.Time      // completion (departure) time
	RT time.Duration // end-to-end response time
	// Degraded marks a completion that returned a partial response (an
	// optional downstream call was dropped by the resilience layer).
	// Degraded completions count toward throughput but never toward
	// goodput, regardless of how fast the partial answer came back.
	Degraded bool
}

// CompletionLog is an append-only log of request completions, stored in
// completion order. Keeping raw completions (instead of pre-bucketed
// counters) lets the SCG model re-derive goodput against any propagated
// deadline after the fact — the crux of threshold-sensitive estimation.
type CompletionLog struct {
	completions []Completion
}

// Add appends a completion; out-of-order appends panic (see Series.Add).
func (l *CompletionLog) Add(at sim.Time, rt time.Duration) {
	l.AddFlagged(at, rt, false)
}

// AddFlagged appends a completion carrying the degraded marker;
// out-of-order appends panic (see Series.Add).
func (l *CompletionLog) AddFlagged(at sim.Time, rt time.Duration, degraded bool) {
	if n := len(l.completions); n > 0 && at < l.completions[n-1].At {
		panic(fmt.Sprintf("metrics: out-of-order completion at %v after %v", at, l.completions[n-1].At))
	}
	l.completions = append(l.completions, Completion{At: at, RT: rt, Degraded: degraded})
}

// Len returns the number of recorded completions.
func (l *CompletionLog) Len() int { return len(l.completions) }

// Prune discards completions older than the cutoff.
func (l *CompletionLog) Prune(before sim.Time) {
	i := l.lowerBound(before)
	if i == 0 {
		return
	}
	remaining := len(l.completions) - i
	copy(l.completions, l.completions[i:])
	l.completions = l.completions[:remaining]
}

// Window returns completions with At in [since, until).
func (l *CompletionLog) Window(since, until sim.Time) []Completion {
	lo, hi := l.lowerBound(since), l.lowerBound(until)
	if lo >= hi {
		return nil
	}
	out := make([]Completion, hi-lo)
	copy(out, l.completions[lo:hi])
	return out
}

// Counts returns (goodput, badput) request counts in [since, until)
// against the given response-time threshold. Degraded completions are
// badput whatever their latency: a fast partial answer does not meet
// the SLA.
func (l *CompletionLog) Counts(since, until sim.Time, threshold time.Duration) (good, bad int) {
	for _, c := range l.completions[l.lowerBound(since):l.lowerBound(until)] {
		if !c.Degraded && c.RT <= threshold {
			good++
		} else {
			bad++
		}
	}
	return good, bad
}

// CountsByOutcome splits the completions of [since, until) three ways
// against the threshold: good (full response within the SLA), degraded
// (partial response, any latency), violated (full response over the
// SLA). The chaos experiments report these fractions per fault window.
func (l *CompletionLog) CountsByOutcome(since, until sim.Time, threshold time.Duration) (good, degraded, violated int) {
	for _, c := range l.completions[l.lowerBound(since):l.lowerBound(until)] {
		switch {
		case c.Degraded:
			degraded++
		case c.RT <= threshold:
			good++
		default:
			violated++
		}
	}
	return good, degraded, violated
}

// GoodputRate returns the goodput in requests/second over [since, until)
// against the threshold.
func (l *CompletionLog) GoodputRate(since, until sim.Time, threshold time.Duration) float64 {
	if until <= since {
		return 0
	}
	good, _ := l.Counts(since, until, threshold)
	return float64(good) / (until - since).Seconds()
}

// ThroughputRate returns the total completion rate in requests/second
// over [since, until).
func (l *CompletionLog) ThroughputRate(since, until sim.Time) float64 {
	if until <= since {
		return 0
	}
	good, bad := l.Counts(since, until, time.Duration(math.MaxInt64))
	return float64(good+bad) / (until - since).Seconds()
}

// BucketRates partitions [since, until) into fixed buckets and returns the
// per-bucket goodput and throughput rates (requests/second) against the
// threshold.
func (l *CompletionLog) BucketRates(since, until sim.Time, bucket time.Duration, threshold time.Duration) (goodput, throughput []float64) {
	n := bucketCount(since, until, bucket)
	if n == 0 {
		return nil, nil
	}
	goodput = make([]float64, n)
	throughput = make([]float64, n)
	perBucket := bucket.Seconds()
	for _, c := range l.completions[l.lowerBound(since):l.lowerBound(until)] {
		idx := int((c.At - since) / bucket)
		if idx < 0 || idx >= n {
			continue
		}
		throughput[idx]++
		if !c.Degraded && c.RT <= threshold {
			goodput[idx]++
		}
	}
	for i := range goodput {
		goodput[i] /= perBucket
		throughput[i] /= perBucket
	}
	return goodput, throughput
}

// ResponseTimes returns the response times of completions in [since, until)
// as float64 milliseconds (the unit used throughout the paper's figures).
func (l *CompletionLog) ResponseTimes(since, until sim.Time) []float64 {
	win := l.completions[l.lowerBound(since):l.lowerBound(until)]
	out := make([]float64, len(win))
	for i, c := range win {
		out[i] = float64(c.RT) / float64(time.Millisecond)
	}
	return out
}

// Percentile returns the p-th percentile response time over [since, until).
func (l *CompletionLog) Percentile(p float64, since, until sim.Time) (time.Duration, error) {
	rts := l.ResponseTimes(since, until)
	ms, err := stats.Percentile(rts, p)
	if err != nil {
		return 0, fmt.Errorf("metrics: percentile: %w", err)
	}
	return time.Duration(ms * float64(time.Millisecond)), nil
}

func (l *CompletionLog) lowerBound(t sim.Time) int {
	return sort.Search(len(l.completions), func(i int) bool { return l.completions[i].At >= t })
}

// Histogram is a fixed-bin latency histogram, used to regenerate the
// paper's Figure 4 response-time distribution plots.
type Histogram struct {
	binWidth time.Duration
	bins     []int
	overflow int
	total    int
}

// NewHistogram returns a histogram with the given bin width covering
// [0, binWidth*numBins); larger values land in the overflow bin.
func NewHistogram(binWidth time.Duration, numBins int) (*Histogram, error) {
	if binWidth <= 0 || numBins <= 0 {
		return nil, fmt.Errorf("metrics: invalid histogram shape: width=%v bins=%d", binWidth, numBins)
	}
	return &Histogram{binWidth: binWidth, bins: make([]int, numBins)}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v time.Duration) {
	h.total++
	if v < 0 {
		v = 0
	}
	idx := int(v / h.binWidth)
	if idx >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[idx]++
}

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinWidth returns the configured bin width.
func (h *Histogram) BinWidth() time.Duration { return h.binWidth }

// Overflow returns the count of observations beyond the last bin.
func (h *Histogram) Overflow() int { return h.overflow }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// FractionBelow returns the fraction of observations at or below the
// threshold, counting each bin at its upper edge (conservative).
func (h *Histogram) FractionBelow(threshold time.Duration) float64 {
	if h.total == 0 {
		return 0
	}
	count := 0
	for i, c := range h.bins {
		upper := time.Duration(i+1) * h.binWidth
		if upper <= threshold {
			count += c
		}
	}
	return float64(count) / float64(h.total)
}

// ConcurrencyGoodputPairs aligns a concurrency gauge series with a
// completion log over [since, until) at the given sampling interval,
// producing the <Q_n, GP_n> pairs of the SCG model's metrics-collection
// phase (section 3.2). Buckets with no concurrency samples are skipped.
func ConcurrencyGoodputPairs(conc *Series, log *CompletionLog, since, until sim.Time, interval time.Duration, threshold time.Duration) (qs, gps []float64) {
	qMeans := conc.BucketMeans(since, until, interval)
	goodput, _ := log.BucketRates(since, until, interval, threshold)
	n := len(qMeans)
	if len(goodput) < n {
		n = len(goodput)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(qMeans[i]) {
			continue
		}
		qs = append(qs, qMeans[i])
		gps = append(gps, goodput[i])
	}
	return qs, gps
}

// ConcurrencyThroughputPairs is the latency-agnostic variant used by the
// ConScale SCT baseline: identical alignment but the y value is raw
// throughput.
func ConcurrencyThroughputPairs(conc *Series, log *CompletionLog, since, until sim.Time, interval time.Duration) (qs, tps []float64) {
	qMeans := conc.BucketMeans(since, until, interval)
	_, throughput := log.BucketRates(since, until, interval, time.Duration(math.MaxInt64))
	n := len(qMeans)
	if len(throughput) < n {
		n = len(throughput)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(qMeans[i]) {
			continue
		}
		qs = append(qs, qMeans[i])
		tps = append(tps, throughput[i])
	}
	return qs, tps
}

func bucketCount(since, until sim.Time, bucket time.Duration) int {
	if until <= since || bucket <= 0 {
		return 0
	}
	return int((until - since + bucket - 1) / bucket)
}
